"""Undirected weighted graphs in CSR (compressed sparse row) layout.

The whole package operates on :class:`Graph`: an immutable, undirected,
positively-weighted multigraph-free graph stored as three contiguous numpy
arrays (``indptr``, ``adj``, ``weights``).  The CSR layout follows the HPC
guide idioms used throughout this reproduction: contiguous memory, O(1)
neighbor *views* (never copies), and direct hand-off to
``scipy.sparse.csgraph`` for the vectorized all-pairs computations.

Vertices are ``0..n-1``.  Each undirected edge ``{u, v}`` has a canonical
*edge id* in ``0..m-1``; the two directed arcs it induces both carry that
id (``arc_edge``), which is how routing tables refer to physical links.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from ..errors import GraphError


class Graph:
    """Immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(m, 2)`` integer array of endpoints, one row per undirected edge.
    weights:
        Optional ``(m,)`` array of positive edge weights (default: all 1).

    Notes
    -----
    Self loops and parallel edges are rejected: compact routing schemes are
    defined on simple graphs and both would make port numbering ambiguous.
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "adj",
        "adj_weights",
        "arc_edge",
        "edges",
        "edge_weights",
        "_edge_index",
        "_csr",
    )

    def __init__(
        self,
        n: int,
        edges: Sequence[Tuple[int, int]],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        edge_arr = np.asarray(edges, dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphError(f"edges must be an (m, 2) array, got shape {edge_arr.shape}")
        m = edge_arr.shape[0]
        if weights is None:
            weight_arr = np.ones(m, dtype=np.float64)
        else:
            weight_arr = np.asarray(weights, dtype=np.float64)
            if weight_arr.shape != (m,):
                raise GraphError(
                    f"weights must have shape ({m},), got {weight_arr.shape}"
                )
            if m and (not np.all(np.isfinite(weight_arr)) or np.any(weight_arr <= 0)):
                raise GraphError("edge weights must be finite and strictly positive")
        if m:
            if np.any(edge_arr < 0) or np.any(edge_arr >= n):
                raise GraphError("edge endpoint out of range")
            if np.any(edge_arr[:, 0] == edge_arr[:, 1]):
                raise GraphError("self loops are not allowed")
            canon = np.sort(edge_arr, axis=1)
            keys = canon[:, 0] * n + canon[:, 1]
            if np.unique(keys).size != m:
                raise GraphError("parallel edges are not allowed")

        self.n = int(n)
        self.m = int(m)
        # Canonical (sorted-endpoint) edge list, original order preserved.
        self.edges = np.sort(edge_arr, axis=1) if m else edge_arr
        self.edge_weights = weight_arr

        # Build CSR: each undirected edge contributes two directed arcs.
        deg = np.zeros(n, dtype=np.int64)
        if m:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        adj = np.empty(2 * m, dtype=np.int64)
        adj_w = np.empty(2 * m, dtype=np.float64)
        arc_edge = np.empty(2 * m, dtype=np.int64)
        cursor = indptr[:-1].copy()
        for eid in range(m):
            u, v = int(self.edges[eid, 0]), int(self.edges[eid, 1])
            w = weight_arr[eid]
            adj[cursor[u]] = v
            adj_w[cursor[u]] = w
            arc_edge[cursor[u]] = eid
            cursor[u] += 1
            adj[cursor[v]] = u
            adj_w[cursor[v]] = w
            arc_edge[cursor[v]] = eid
            cursor[v] += 1
        # Sort each adjacency row by neighbor id: deterministic iteration
        # order, and it enables binary-search neighbor lookup.
        for u in range(n):
            lo, hi = indptr[u], indptr[u + 1]
            order = np.argsort(adj[lo:hi], kind="stable")
            adj[lo:hi] = adj[lo:hi][order]
            adj_w[lo:hi] = adj_w[lo:hi][order]
            arc_edge[lo:hi] = arc_edge[lo:hi][order]

        self.indptr = indptr
        self.adj = adj
        self.adj_weights = adj_w
        self.arc_edge = arc_edge
        self._edge_index: Optional[Dict[Tuple[int, int], int]] = None
        self._csr = None

    def with_edge_weights(self, weights: Sequence[float]) -> "Graph":
        """A structurally identical graph with new per-edge weights.

        O(m): the CSR topology (``indptr``/``adj``/``arc_edge``), the
        canonical edge list and the lazy edge index are shared verbatim
        (all treated as immutable); only the weight columns are rebuilt,
        ``adj_weights`` by a single gather through ``arc_edge``.  The
        result is bit-identical to ``Graph(n, edges, weights)`` without
        the per-edge CSR construction loop — the weight-only delta path
        leans on this.
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.m,):
            raise GraphError(f"weights must have shape ({self.m},), got {w.shape}")
        if self.m and (not np.all(np.isfinite(w)) or np.any(w <= 0)):
            raise GraphError("edge weights must be finite and strictly positive")
        g = object.__new__(Graph)
        g.n = self.n
        g.m = self.m
        g.indptr = self.indptr
        g.adj = self.adj
        g.adj_weights = w[self.arc_edge]
        g.arc_edge = self.arc_edge
        g.edges = self.edges
        g.edge_weights = w
        g._edge_index = self._edge_index
        g._csr = None
        return g

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def degree(self, u: int) -> int:
        """Number of edges incident to ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex, as an ``(n,)`` array."""
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbors of ``u`` in increasing id order (a CSR *view*)."""
        return self.adj[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` (a CSR *view*)."""
        return self.adj_weights[self.indptr[u] : self.indptr[u + 1]]

    def incident_arcs(self, u: int) -> range:
        """Arc indices (CSR positions) of ``u``'s incident arcs."""
        return range(int(self.indptr[u]), int(self.indptr[u + 1]))

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and row[i] == v

    def edge_id(self, u: int, v: int) -> int:
        """Canonical edge id of ``{u, v}`` (raises if absent)."""
        if self._edge_index is None:
            self._edge_index = {
                (int(a), int(b)): eid for eid, (a, b) in enumerate(self.edges)
            }
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_index[key]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def edge_weight(self, u: int, v: int) -> float:
        return float(self.edge_weights[self.edge_id(u, v)])

    def total_weight(self) -> float:
        return float(self.edge_weights.sum())

    # ------------------------------------------------------------------
    # Derived representations
    # ------------------------------------------------------------------
    def csr(self):
        """The cached :class:`~repro.graphs.csr.CSRKernel` over this graph.

        Built lazily on first use (an O(1) wrap — the kernel shares this
        graph's CSR arrays) and reused for every shortest-path call, so
        repeated scipy hand-offs reuse one ``csr_matrix``.
        """
        if self._csr is None:
            from .csr import CSRKernel

            self._csr = CSRKernel.from_graph(self)
        return self._csr

    def to_scipy(self) -> csr_matrix:
        """Symmetric ``scipy.sparse.csr_matrix`` sharing this graph's data
        (cached on the kernel; treat it as read-only)."""
        return self.csr().matrix()

    def to_networkx(self):
        """Export to :class:`networkx.Graph` (for visualization/tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for eid in range(self.m):
            u, v = int(self.edges[eid, 0]), int(self.edges[eid, 1])
            g.add_edge(u, v, weight=float(self.edge_weights[eid]))
        return g

    @classmethod
    def from_networkx(cls, g, weight: str = "weight") -> "Graph":
        """Import from :class:`networkx.Graph`; nodes are relabeled
        ``0..n-1`` in sorted order and missing weights default to 1."""
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = []
        weights = []
        for u, v, data in g.edges(data=True):
            edges.append((index[u], index[v]))
            weights.append(float(data.get(weight, 1.0)))
        return cls(len(nodes), edges, weights)

    # ------------------------------------------------------------------
    # Connectivity and subgraphs
    # ------------------------------------------------------------------
    def connected_components(self) -> Tuple[int, np.ndarray]:
        """Number of components and per-vertex component labels."""
        if self.n == 0:
            return 0, np.zeros(0, dtype=np.int64)
        if self.m == 0:
            return self.n, np.arange(self.n, dtype=np.int64)
        count, labels = connected_components(self.to_scipy(), directed=False)
        return int(count), labels.astype(np.int64)

    def is_connected(self) -> bool:
        count, _ = self.connected_components()
        return count <= 1

    def largest_component(self) -> "Graph":
        """The induced subgraph on the largest connected component,
        vertices relabeled to ``0..n'-1`` (ties broken by smallest label)."""
        count, labels = self.connected_components()
        if count <= 1:
            return self
        sizes = np.bincount(labels, minlength=count)
        keep = int(np.argmax(sizes))
        vertices = np.flatnonzero(labels == keep)
        return self.subgraph(vertices)

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph, vertices relabeled ``0..len(vertices)-1`` in
        the iteration order given (which must contain no duplicates)."""
        verts = list(int(v) for v in vertices)
        index = {v: i for i, v in enumerate(verts)}
        if len(index) != len(verts):
            raise GraphError("duplicate vertices in subgraph selection")
        edges: List[Tuple[int, int]] = []
        weights: List[float] = []
        for eid in range(self.m):
            u, v = int(self.edges[eid, 0]), int(self.edges[eid, 1])
            if u in index and v in index:
                edges.append((index[u], index[v]))
                weights.append(float(self.edge_weights[eid]))
        return Graph(len(verts), edges, weights)

    def apply_delta(self, delta) -> Tuple["Graph", np.ndarray]:
        """Apply a :class:`~repro.graphs.delta.GraphDelta`; returns the
        mutated graph plus the old→new vertex id map (−1 = dropped)."""
        from .delta import apply_delta

        return apply_delta(self, delta)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same vertex count and the same weighted
        edge *set* (edge insertion order is irrelevant)."""
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False
        mine = np.lexsort((self.edges[:, 1], self.edges[:, 0]))
        theirs = np.lexsort((other.edges[:, 1], other.edges[:, 0]))
        return np.array_equal(
            self.edges[mine], other.edges[theirs]
        ) and np.array_equal(self.edge_weights[mine], other.edge_weights[theirs])

    def __hash__(self) -> int:  # Graphs are hashable by identity.
        return id(self)


class GraphBuilder:
    """Incremental builder producing a :class:`Graph`.

    Silently ignores duplicate edges (keeping the first weight), which is
    convenient for generators that may propose the same pair twice.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self._seen: Dict[Tuple[int, int], int] = {}
        self._edges: List[Tuple[int, int]] = []
        self._weights: List[float] = []

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> bool:
        """Add ``{u, v}``; returns ``False`` if it already existed or is a
        self loop (in which case nothing changes)."""
        if u == v:
            return False
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise GraphError(f"edge ({u}, {v}) endpoint out of range")
        key = (u, v) if u < v else (v, u)
        if key in self._seen:
            return False
        self._seen[key] = len(self._edges)
        self._edges.append(key)
        self._weights.append(float(weight))
        return True

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._seen

    @property
    def m(self) -> int:
        return len(self._edges)

    def build(self) -> Graph:
        return Graph(self.n, self._edges, self._weights)
