"""Rooted trees with the heavy-light machinery of TZ §2.

A :class:`RootedTree` lives on a *subset* of graph vertices (cluster trees
span only the cluster).  All traversals are iterative — a path graph of a
few hundred thousand vertices must not hit Python's recursion limit.

The structural facts the routing schemes rely on (all computed here):

* ``size[v]`` — subtree sizes.
* children ordered by decreasing subtree size (ties toward smaller id);
  the first child is the *heavy* child.  A child at 1-based rank ``r``
  has subtree size at most ``size[v] / r``, so ranks multiply to at most
  ``n`` along any root path — the designer-port label bound.
* ``dfs[v]`` — DFS entry numbers visiting children heavy-first, so the
  subtree of ``v`` occupies the contiguous interval
  ``[dfs[v], dfs[v] + size[v] - 1]`` and the heavy child's interval
  starts at ``dfs[v] + 1``.
* ``light_depth[v]`` — number of light edges on the root→``v`` path; it
  is at most ``log2 n`` because each light step at least halves the
  remaining subtree size... (strictly: a light subtree has at most half
  the parent's size since the heavy sibling is no smaller).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError


class RootedTree:
    """A rooted tree over a subset of graph vertices.

    Construct via :func:`tree_from_parents` or
    :func:`tree_from_predecessors`; the constructor takes a validated
    parent map (``root -> -1``).
    """

    __slots__ = (
        "root",
        "parent",
        "children",
        "size",
        "dfs",
        "finish",
        "depth",
        "light_depth",
        "heavy",
        "child_rank",
        "order",
        "_by_dfs",
    )

    def __init__(self, root: int, parent: Dict[int, int]) -> None:
        if parent.get(root, 0) != -1:
            raise GraphError("parent[root] must be -1")
        self.root = int(root)
        self.parent: Dict[int, int] = dict(parent)

        children: Dict[int, List[int]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p == -1:
                continue
            if p not in children:
                raise GraphError(f"parent {p} of {v} is not a tree vertex")
            children[p].append(v)

        # Subtree sizes via iterative post-order.
        size: Dict[int, int] = {}
        order: List[int] = []  # pre-order (arbitrary child order for now)
        stack = [self.root]
        seen = set()
        while stack:
            v = stack.pop()
            if v in seen:
                raise GraphError("parent map contains a cycle")
            seen.add(v)
            order.append(v)
            stack.extend(children[v])
        if len(seen) != len(self.parent):
            raise GraphError("parent map is disconnected from the root")
        for v in reversed(order):
            size[v] = 1 + sum(size[c] for c in children[v])

        # Order children by decreasing subtree size, ties toward smaller id.
        for v in children:
            children[v].sort(key=lambda c: (-size[c], c))
        heavy: Dict[int, int] = {
            v: (kids[0] if kids else -1) for v, kids in children.items()
        }
        child_rank: Dict[int, int] = {self.root: 0}
        for v, kids in children.items():
            for r, c in enumerate(kids, start=1):
                child_rank[c] = r

        # Heavy-first DFS numbering (children already sorted heavy-first).
        dfs: Dict[int, int] = {}
        depth: Dict[int, int] = {self.root: 0}
        light_depth: Dict[int, int] = {self.root: 0}
        counter = 0
        stack = [self.root]
        dfs_order: List[int] = []
        while stack:
            v = stack.pop()
            dfs[v] = counter
            counter += 1
            dfs_order.append(v)
            if v != self.root:
                p = self.parent[v]
                depth[v] = depth[p] + 1
                light_depth[v] = light_depth[p] + (0 if heavy[p] == v else 1)
            # Push reversed so the heavy child is processed first.
            stack.extend(reversed(children[v]))

        self.children = children
        self.size = size
        self.dfs = dfs
        self.finish = {v: dfs[v] + size[v] - 1 for v in dfs}
        self.depth = depth
        self.light_depth = light_depth
        self.heavy = heavy
        self.child_rank = child_rank
        self.order = dfs_order
        self._by_dfs: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.parent)

    def __contains__(self, v: int) -> bool:
        return v in self.parent

    @property
    def vertices(self) -> Iterable[int]:
        return self.parent.keys()

    def vertex_by_dfs(self, f: int) -> int:
        """Inverse of the DFS numbering."""
        if self._by_dfs is None:
            self._by_dfs = {f: v for v, f in self.dfs.items()}
        return self._by_dfs[f]

    def interval(self, v: int) -> Tuple[int, int]:
        """Closed DFS interval ``[dfs[v], finish[v]]`` of ``v``'s subtree."""
        return self.dfs[v], self.finish[v]

    def is_ancestor(self, a: int, v: int) -> bool:
        """True iff ``a`` is an ancestor of ``v`` (inclusive)."""
        return self.dfs[a] <= self.dfs[v] <= self.finish[a]

    def path_to_root(self, v: int) -> List[int]:
        path = [v]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
            if len(path) > len(self.parent):
                raise GraphError("parent map contains a cycle")
        return path

    def path(self, u: int, v: int) -> List[int]:
        """Tree path from ``u`` to ``v`` (through their LCA)."""
        up = self.path_to_root(u)
        vp = self.path_to_root(v)
        on_u = set(up)
        lca = next(x for x in vp if x in on_u)
        head = up[: up.index(lca) + 1]
        tail = vp[: vp.index(lca)]
        return head + list(reversed(tail))

    def light_edges_to(self, v: int) -> List[Tuple[int, int]]:
        """Light edges ``(parent, child)`` on the root→``v`` path, in
        root-to-leaf order.  ``len(result) == light_depth[v]``."""
        result: List[Tuple[int, int]] = []
        for x in reversed(self.path_to_root(v)):
            if x == self.root:
                continue
            p = self.parent[x]
            if self.heavy[p] != x:
                result.append((p, x))
        return result

    def edges(self) -> List[Tuple[int, int]]:
        """All (parent, child) tree edges."""
        return [(p, v) for v, p in self.parent.items() if p != -1]

    def max_light_depth(self) -> int:
        return max(self.light_depth.values()) if self.light_depth else 0

    def validate(self) -> None:
        """Check internal invariants; raises :class:`GraphError` on any
        violation.  Used by tests and failure-injection experiments."""
        n = len(self.parent)
        if sorted(self.dfs.values()) != list(range(n)):
            raise GraphError("DFS numbers are not a permutation of 0..n-1")
        if self.size[self.root] != n:
            raise GraphError("root subtree size mismatch")
        for v in self.parent:
            lo, hi = self.interval(v)
            if hi - lo + 1 != self.size[v]:
                raise GraphError(f"interval of {v} does not match its size")
            if v != self.root:
                plo, phi = self.interval(self.parent[v])
                if not (plo <= lo and hi <= phi):
                    raise GraphError(f"interval of {v} not nested in parent's")
            kids = self.children[v]
            if kids:
                if self.heavy[v] != kids[0]:
                    raise GraphError(f"heavy child of {v} is not its largest")
                if self.dfs[kids[0]] != self.dfs[v] + 1:
                    raise GraphError("heavy child must be first in DFS")
                for a, b in zip(kids, kids[1:]):
                    if self.size[a] < self.size[b]:
                        raise GraphError(f"children of {v} not sorted by size")
            # Rank-r child has subtree size at most size(v)/r.
            for r, c in enumerate(kids, start=1):
                if self.size[c] * r > self.size[v]:
                    raise GraphError(
                        f"rank-{r} child {c} of {v} violates the size bound"
                    )


def tree_from_parents(root: int, parent: Dict[int, int]) -> RootedTree:
    """Build a :class:`RootedTree` from a ``vertex -> parent`` map.

    The map must contain ``root`` (mapped to ``-1``) and every other tree
    vertex mapped to its parent.
    """
    p = dict(parent)
    p[root] = -1
    return RootedTree(root, p)


def tree_from_predecessors(
    root: int,
    predecessors: np.ndarray,
    members: Optional[Sequence[int]] = None,
) -> RootedTree:
    """Build a tree from a scipy/Dijkstra predecessor row.

    ``predecessors[v]`` is ``v``'s parent or a negative sentinel for
    unreachable vertices and the root.  With ``members`` given, only those
    vertices join the tree (they must be closed under taking parents).
    """
    parent: Dict[int, int] = {int(root): -1}
    verts = range(len(predecessors)) if members is None else members
    for v in verts:
        v = int(v)
        if v == root:
            continue
        p = int(predecessors[v])
        if p < 0:
            if members is not None:
                raise GraphError(f"member {v} has no predecessor toward {root}")
            continue  # unreachable vertex: skip
        parent[v] = p
    return RootedTree(int(root), parent)
