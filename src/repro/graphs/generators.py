"""Graph and tree generators for the experiment suite.

Every generator is deterministic given ``rng`` (an int seed or numpy
Generator; see :mod:`repro.rng`).  Routing experiments need connected
graphs; generators accept ``connected=True`` (default) which restricts to
the largest connected component and relabels — the standard practice in
the compact-routing evaluation literature.

Edge weights: ``weights=None`` gives unit weights; ``weights=(lo, hi)``
draws independent uniform *integer* weights in ``[lo, hi]``, which keeps
all distance arithmetic exact in float64 (see
:mod:`repro.graphs.shortest_paths`).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from ..rng import RngLike, make_rng
from .graph import Graph, GraphBuilder

WeightSpec = Optional[Tuple[int, int]]


def _apply_weights(graph: Graph, weights: WeightSpec, rng: np.random.Generator) -> Graph:
    if weights is None:
        return graph
    lo, hi = weights
    if not (1 <= lo <= hi):
        raise GraphError(f"weight range must satisfy 1 <= lo <= hi, got {weights}")
    w = rng.integers(lo, hi + 1, size=graph.m).astype(np.float64)
    return Graph(graph.n, graph.edges, w)


def _finalize(
    graph: Graph, connected: bool, weights: WeightSpec, rng: np.random.Generator
) -> Graph:
    if connected:
        graph = graph.largest_component()
    return _apply_weights(graph, weights, rng)


# ----------------------------------------------------------------------
# Random graph families
# ----------------------------------------------------------------------
def gnp(
    n: int,
    p: float,
    *,
    rng: RngLike = None,
    connected: bool = True,
    weights: WeightSpec = None,
) -> Graph:
    """Erdős–Rényi ``G(n, p)``.

    Sampled by geometric edge skipping (O(n + m) expected), so large
    sparse instances are cheap.
    """
    gen = make_rng(rng)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    builder = GraphBuilder(n)
    if p > 0:
        total = n * (n - 1) // 2
        if p >= 1.0:
            for u in range(n):
                for v in range(u + 1, n):
                    builder.add_edge(u, v)
        else:
            # Skip-sampling over the linearized upper triangle.
            log_q = math.log1p(-p)
            idx = -1
            while True:
                r = gen.random()
                idx += 1 + int(math.floor(math.log(1.0 - r) / log_q))
                if idx >= total:
                    break
                u = int((1 + math.isqrt(1 + 8 * idx)) // 2)
                # Correct u so that u*(u-1)/2 <= idx < (u+1)*u/2.
                while u * (u - 1) // 2 > idx:
                    u -= 1
                while (u + 1) * u // 2 <= idx:
                    u += 1
                v = idx - u * (u - 1) // 2
                builder.add_edge(u, v)
    return _finalize(builder.build(), connected, weights, gen)


def gnm(
    n: int,
    m: int,
    *,
    rng: RngLike = None,
    connected: bool = True,
    weights: WeightSpec = None,
) -> Graph:
    """Uniform random graph with exactly ``m`` edges."""
    gen = make_rng(rng)
    total = n * (n - 1) // 2
    if m > total:
        raise GraphError(f"cannot place {m} edges in a simple graph on {n} vertices")
    builder = GraphBuilder(n)
    while builder.m < m:
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n))
        builder.add_edge(u, v)
    return _finalize(builder.build(), connected, weights, gen)


def random_geometric(
    n: int,
    radius: float,
    *,
    rng: RngLike = None,
    connected: bool = True,
    weights: WeightSpec = None,
) -> Graph:
    """Random geometric graph on the unit square (grid-bucketed, so the
    expected cost is O(n) rather than O(n²) for small radii)."""
    gen = make_rng(rng)
    pts = gen.random((n, 2))
    cell = max(radius, 1e-9)
    buckets = {}
    for i in range(n):
        key = (int(pts[i, 0] / cell), int(pts[i, 1] / cell))
        buckets.setdefault(key, []).append(i)
    builder = GraphBuilder(n)
    r2 = radius * radius
    for (cx, cy), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                other = buckets.get((cx + dx, cy + dy))
                if other is None:
                    continue
                for i in members:
                    for j in other:
                        if i < j:
                            d = pts[i] - pts[j]
                            if d[0] * d[0] + d[1] * d[1] <= r2:
                                builder.add_edge(i, j)
    return _finalize(builder.build(), connected, weights, gen)


def barabasi_albert(
    n: int,
    m_attach: int,
    *,
    rng: RngLike = None,
    weights: WeightSpec = None,
) -> Graph:
    """Barabási–Albert preferential attachment (always connected).

    The classic approximation of Internet AS-level topology used
    throughout the compact-routing evaluation literature.
    """
    gen = make_rng(rng)
    if m_attach < 1 or n <= m_attach:
        raise GraphError("need 1 <= m_attach < n")
    builder = GraphBuilder(n)
    targets = list(range(m_attach))
    repeated: list = list(range(m_attach))  # attachment pool ∝ degree
    for v in range(m_attach, n):
        chosen = set()
        for t in targets:
            if builder.add_edge(v, t):
                chosen.add(t)
        repeated.extend(chosen)
        repeated.extend([v] * len(chosen))
        # Sample next targets proportionally to degree (with dedup).
        nxt = set()
        while len(nxt) < min(m_attach, v + 1):
            nxt.add(int(repeated[int(gen.integers(0, len(repeated)))]))
        targets = sorted(nxt)
    return _apply_weights(builder.build(), weights, gen)


def powerlaw_cluster(
    n: int,
    m_attach: int,
    triangle_p: float,
    *,
    rng: RngLike = None,
    weights: WeightSpec = None,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering — the "AS-like"
    topology used for experiment F7 (heavy-tailed degrees *and*
    clustering, like the measured Internet)."""
    gen = make_rng(rng)
    if m_attach < 1 or n <= m_attach:
        raise GraphError("need 1 <= m_attach < n")
    builder = GraphBuilder(n)
    repeated: list = list(range(m_attach))
    for v in range(m_attach, n):
        count = 0
        last_target = -1
        guard = 0
        while count < min(m_attach, v):
            guard += 1
            if guard > 50 * m_attach + 100:
                break
            if last_target >= 0 and gen.random() < triangle_p:
                # Triangle step: attach to a random neighbor of the last
                # target, closing a triangle.
                nbrs = [u for u in builder_neighbors(builder, last_target) if u != v]
                if nbrs:
                    w = int(nbrs[int(gen.integers(0, len(nbrs)))])
                    if builder.add_edge(v, w):
                        repeated.extend([w, v])
                        count += 1
                        continue
            t = int(repeated[int(gen.integers(0, len(repeated)))])
            if builder.add_edge(v, t):
                repeated.extend([t, v])
                last_target = t
                count += 1
    return _apply_weights(builder.build(), weights, gen)


def builder_neighbors(builder: GraphBuilder, u: int) -> Sequence[int]:
    """Neighbors of ``u`` accumulated so far in a :class:`GraphBuilder`
    (linear scan; only used by generators on modest sizes)."""
    out = []
    for a, b in builder._edges:
        if a == u:
            out.append(b)
        elif b == u:
            out.append(a)
    return out


def waxman(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.1,
    *,
    rng: RngLike = None,
    connected: bool = True,
    weights: WeightSpec = None,
) -> Graph:
    """Waxman random topology: P(edge) = alpha * exp(-d / (beta * L))."""
    gen = make_rng(rng)
    pts = gen.random((n, 2))
    builder = GraphBuilder(n)
    scale = beta * math.sqrt(2.0)
    for u in range(n):
        d = np.linalg.norm(pts[u + 1 :] - pts[u], axis=1)
        probs = alpha * np.exp(-d / scale)
        hits = np.flatnonzero(gen.random(d.size) < probs)
        for h in hits:
            builder.add_edge(u, u + 1 + int(h))
    return _finalize(builder.build(), connected, weights, gen)


def internet_as_like(
    n: int,
    *,
    rng: RngLike = None,
    weights: WeightSpec = None,
) -> Graph:
    """Synthetic AS-level-Internet-like topology (substitution note in
    DESIGN.md §2.5): Holme–Kim with m=2, high clustering — heavy-tailed
    degree distribution, small diameter, the workload of experiment F7."""
    return powerlaw_cluster(n, 2, 0.5, rng=rng, weights=weights)


# ----------------------------------------------------------------------
# Structured families
# ----------------------------------------------------------------------
def grid2d(
    rows: int,
    cols: int,
    *,
    torus: bool = False,
    rng: RngLike = None,
    weights: WeightSpec = None,
) -> Graph:
    """``rows × cols`` grid (optionally wrapped into a torus)."""
    gen = make_rng(rng)
    builder = GraphBuilder(rows * cols)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                builder.add_edge(vid(r, c), vid(r, c + 1))
            elif torus and cols > 2:
                builder.add_edge(vid(r, c), vid(r, 0))
            if r + 1 < rows:
                builder.add_edge(vid(r, c), vid(r + 1, c))
            elif torus and rows > 2:
                builder.add_edge(vid(r, c), vid(0, c))
    return _apply_weights(builder.build(), weights, gen)


def hypercube(dim: int, *, rng: RngLike = None, weights: WeightSpec = None) -> Graph:
    """The ``dim``-dimensional hypercube on ``2**dim`` vertices."""
    gen = make_rng(rng)
    n = 1 << dim
    builder = GraphBuilder(n)
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                builder.add_edge(u, v)
    return _apply_weights(builder.build(), weights, gen)


def ring(n: int, *, rng: RngLike = None, weights: WeightSpec = None) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError("a ring needs at least 3 vertices")
    gen = make_rng(rng)
    edges = [(i, (i + 1) % n) for i in range(n)]
    g = Graph(n, edges)
    return _apply_weights(g, weights, gen)


def complete(n: int, *, rng: RngLike = None, weights: WeightSpec = None) -> Graph:
    """Complete graph ``K_n``."""
    gen = make_rng(rng)
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return _apply_weights(Graph(n, edges), weights, gen)


# ----------------------------------------------------------------------
# Tree families (workloads of experiment F2)
# ----------------------------------------------------------------------
def path_tree(n: int, *, rng: RngLike = None, weights: WeightSpec = None) -> Graph:
    """Path on ``n`` vertices — worst case for naive schemes, depth n."""
    gen = make_rng(rng)
    return _apply_weights(Graph(n, [(i, i + 1) for i in range(n - 1)]), weights, gen)


def star_tree(n: int, *, rng: RngLike = None, weights: WeightSpec = None) -> Graph:
    """Star ``K_{1,n-1}`` — worst case for port-number label size."""
    gen = make_rng(rng)
    return _apply_weights(Graph(n, [(0, i) for i in range(1, n)]), weights, gen)


def random_tree(n: int, *, rng: RngLike = None, weights: WeightSpec = None) -> Graph:
    """Uniform random labeled tree via Prüfer-sequence decoding."""
    gen = make_rng(rng)
    if n <= 0:
        raise GraphError("tree needs at least one vertex")
    if n == 1:
        return Graph(1, [])
    if n == 2:
        return _apply_weights(Graph(2, [(0, 1)]), weights, gen)
    prufer = gen.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges = []
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return _apply_weights(Graph(n, edges), weights, gen)


def caterpillar(
    spine: int,
    legs_per_vertex: int,
    *,
    rng: RngLike = None,
    weights: WeightSpec = None,
) -> Graph:
    """Caterpillar: a spine path with ``legs_per_vertex`` leaves each."""
    gen = make_rng(rng)
    n = spine * (1 + legs_per_vertex)
    builder = GraphBuilder(n)
    for i in range(spine - 1):
        builder.add_edge(i, i + 1)
    nxt = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            builder.add_edge(i, nxt)
            nxt += 1
    return _apply_weights(builder.build(), weights, gen)


def balanced_binary_tree(
    depth: int, *, rng: RngLike = None, weights: WeightSpec = None
) -> Graph:
    """Complete binary tree of the given depth (``2^{depth+1}-1`` nodes)."""
    gen = make_rng(rng)
    n = (1 << (depth + 1)) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return _apply_weights(Graph(n, edges), weights, gen)


def broom(
    handle: int, bristles: int, *, rng: RngLike = None, weights: WeightSpec = None
) -> Graph:
    """A path of length ``handle`` ending in a star of ``bristles`` leaves
    — exercises both deep and wide label components at once."""
    gen = make_rng(rng)
    n = handle + bristles
    builder = GraphBuilder(n)
    for i in range(handle - 1):
        builder.add_edge(i, i + 1)
    for j in range(bristles):
        builder.add_edge(handle - 1, handle + j)
    return _apply_weights(builder.build(), weights, gen)


def spider(
    legs: int, leg_length: int, *, rng: RngLike = None, weights: WeightSpec = None
) -> Graph:
    """``legs`` paths of ``leg_length`` vertices joined at a hub."""
    gen = make_rng(rng)
    n = 1 + legs * leg_length
    builder = GraphBuilder(n)
    vid = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            builder.add_edge(prev, vid)
            prev = vid
            vid += 1
    return _apply_weights(builder.build(), weights, gen)


TREE_FAMILIES = {
    "random": lambda n, rng: random_tree(n, rng=rng),
    "path": lambda n, rng: path_tree(n, rng=rng),
    "star": lambda n, rng: star_tree(n, rng=rng),
    "caterpillar": lambda n, rng: caterpillar(max(2, n // 3), 2, rng=rng),
    "binary": lambda n, rng: balanced_binary_tree(
        max(1, int(math.log2(max(2, n))) - 1), rng=rng
    ),
    "broom": lambda n, rng: broom(max(1, n // 2), max(1, n - n // 2), rng=rng),
}
