"""Graph deltas: declarative mutations and their application.

A :class:`GraphDelta` is the unit of change the incremental maintenance
pipeline operates on: a batch of edge weight changes, edge insertions
and deletions, and node insertions and deletions, applied atomically.
:func:`apply_delta` turns ``(graph, delta)`` into the mutated graph plus
the vertex id map the rest of the pipeline needs — node deletion
relabels the survivors *monotonically* (``0..n'-1`` in old-id order), so
relative vertex order, and with it every sorted adjacency row and every
``"sorted"`` port number of an untouched vertex, is preserved.  Added
nodes take the ids after the survivors.

:class:`~repro.graphs.graph.Graph` is immutable, so application always
produces a fresh instance: derived caches (the CSR kernel, the scipy
matrix, the edge index) can never leak from the pre-delta graph into the
post-delta one — the property suite in ``tests/test_update.py`` pins
that down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import GraphError
from .graph import Graph

__all__ = ["GraphDelta", "apply_delta"]


def _canon_pair(u: int, v: int) -> Tuple[int, int]:
    u, v = int(u), int(v)
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class GraphDelta:
    """One atomic batch of graph mutations (see module docstring).

    ``weight_updates``
        ``(u, v, new_weight)`` triples for existing edges.
    ``add_edges``
        ``(u, v, weight)`` triples; endpoints may be added nodes.
    ``drop_edges``
        ``(u, v)`` pairs of existing edges to remove.
    ``drop_nodes``
        vertex ids to remove along with every incident edge.
    ``add_nodes``
        how many fresh vertices to append; they take the ids following
        the surviving old vertices and must be wired up via
        ``add_edges`` to keep the graph connected.

    All endpoint pairs are canonicalized (sorted, deduplicated) at
    construction, so two deltas describing the same mutation compare and
    digest equal.
    """

    weight_updates: Tuple[Tuple[int, int, float], ...] = ()
    add_edges: Tuple[Tuple[int, int, float], ...] = ()
    drop_edges: Tuple[Tuple[int, int], ...] = ()
    drop_nodes: Tuple[int, ...] = ()
    add_nodes: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "weight_updates",
            tuple(sorted((*_canon_pair(u, v), float(w)) for u, v, w in self.weight_updates)),
        )
        object.__setattr__(
            self,
            "add_edges",
            tuple(sorted((*_canon_pair(u, v), float(w)) for u, v, w in self.add_edges)),
        )
        object.__setattr__(
            self, "drop_edges", tuple(sorted(set(_canon_pair(u, v) for u, v in self.drop_edges)))
        )
        object.__setattr__(self, "drop_nodes", tuple(sorted(set(int(v) for v in self.drop_nodes))))
        object.__setattr__(self, "add_nodes", int(self.add_nodes))
        if self.add_nodes < 0:
            raise GraphError(f"cannot add {self.add_nodes} nodes")
        for seq, what in ((self.weight_updates, "weight update"), (self.add_edges, "edge insertion")):
            pairs = [(u, v) for u, v, _ in seq]
            if len(set(pairs)) != len(pairs):
                raise GraphError(f"duplicate {what} in delta")
            for u, v, w in seq:
                if not (np.isfinite(w) and w > 0):
                    raise GraphError(f"{what} ({u},{v}) has non-positive weight {w}")

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when applying this delta is the identity."""
        return not (
            self.weight_updates
            or self.add_edges
            or self.drop_edges
            or self.drop_nodes
            or self.add_nodes
        )

    def classes(self) -> Tuple[str, ...]:
        """The mutation classes present, for reports and bench labels."""
        out = []
        if self.weight_updates:
            out.append("weight")
        if self.add_edges:
            out.append("edge-add")
        if self.drop_edges:
            out.append("edge-drop")
        if self.drop_nodes:
            out.append("node-drop")
        if self.add_nodes:
            out.append("node-add")
        return tuple(out)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready canonical form (the digest input)."""
        return {
            "weight_updates": [[u, v, w] for u, v, w in self.weight_updates],
            "add_edges": [[u, v, w] for u, v, w in self.add_edges],
            "drop_edges": [[u, v] for u, v in self.drop_edges],
            "drop_nodes": list(self.drop_nodes),
            "add_nodes": self.add_nodes,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "GraphDelta":
        return cls(
            weight_updates=tuple((int(u), int(v), float(w)) for u, v, w in doc.get("weight_updates", ())),
            add_edges=tuple((int(u), int(v), float(w)) for u, v, w in doc.get("add_edges", ())),
            drop_edges=tuple((int(u), int(v)) for u, v in doc.get("drop_edges", ())),
            drop_nodes=tuple(int(v) for v in doc.get("drop_nodes", ())),
            add_nodes=int(doc.get("add_nodes", 0)),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical form — the store's delta identity."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    def touched_old_vertices(self) -> np.ndarray:
        """Old-id vertices directly named by the delta (endpoints of
        changed edges plus dropped nodes), sorted unique."""
        ids = set(self.drop_nodes)
        for u, v, _ in self.weight_updates:
            ids.update((u, v))
        for u, v in self.drop_edges:
            ids.update((u, v))
        for u, v, _ in self.add_edges:
            ids.update((u, v))
        return np.array(sorted(ids), dtype=np.int64)


def apply_delta(graph: Graph, delta: GraphDelta) -> Tuple[Graph, np.ndarray]:
    """Apply ``delta`` to ``graph``; returns ``(new_graph, id_map)``.

    ``id_map`` has one entry per *old* vertex: the vertex's new id, or
    ``-1`` if dropped.  Survivors are relabeled monotonically and added
    nodes take the trailing ids (see module docstring).  Every operation
    is validated against the graph it mutates (weight updates and drops
    must name existing edges, insertions must not duplicate surviving
    edges), so a stale delta fails loudly instead of corrupting state.
    """
    n = graph.n
    for v in delta.drop_nodes:
        if not 0 <= v < n:
            raise GraphError(f"cannot drop vertex {v}: out of range 0..{n - 1}")
    dropped = np.zeros(n, dtype=bool)
    if delta.drop_nodes:
        dropped[list(delta.drop_nodes)] = True

    weights = graph.edge_weights.copy()
    for u, v, w in delta.weight_updates:
        weights[graph.edge_id(u, v)] = w  # edge_id raises if absent

    if not (delta.drop_nodes or delta.drop_edges or delta.add_edges or delta.add_nodes):
        # Weight-only: the CSR topology is untouched, so share it instead
        # of paying the per-edge construction loop (bit-identical arrays).
        return graph.with_edge_weights(weights), np.arange(n, dtype=np.int64)

    keep = np.ones(graph.m, dtype=bool)
    for u, v in delta.drop_edges:
        keep[graph.edge_id(u, v)] = False
    if delta.drop_nodes:
        keep &= ~(dropped[graph.edges[:, 0]] | dropped[graph.edges[:, 1]])

    id_map = np.full(n, -1, dtype=np.int64)
    survivors = np.flatnonzero(~dropped)
    id_map[survivors] = np.arange(survivors.shape[0], dtype=np.int64)
    n_new = int(survivors.shape[0]) + delta.add_nodes

    edges = id_map[graph.edges[keep]]
    weights = weights[keep]
    if delta.add_edges:
        surviving = {
            _canon_pair(int(a), int(b)) for a, b in graph.edges[keep]
        }
        extra_edges = []
        extra_weights = []
        for u, v, w in delta.add_edges:
            for x in (u, v):
                if not 0 <= x < n + delta.add_nodes:
                    raise GraphError(f"added edge endpoint {x} out of range")
                if x < n and dropped[x]:
                    raise GraphError(
                        f"added edge ({u},{v}) touches dropped vertex {x}"
                    )
            if (u, v) in surviving:
                raise GraphError(f"added edge ({u},{v}) already exists")
            # Old-id endpoints map through id_map; fresh nodes (ids >= n
            # in delta coordinates) land after the survivors.
            nu = int(id_map[u]) if u < n else u - n + int(survivors.shape[0])
            nv = int(id_map[v]) if v < n else v - n + int(survivors.shape[0])
            extra_edges.append((nu, nv))
            extra_weights.append(w)
        edges = np.concatenate(
            [edges.reshape(-1, 2), np.asarray(extra_edges, dtype=np.int64).reshape(-1, 2)]
        )
        weights = np.concatenate([weights, np.asarray(extra_weights, dtype=np.float64)])

    return Graph(n_new, edges, weights), id_map
