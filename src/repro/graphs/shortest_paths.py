"""Shortest-path primitives with deterministic tie-breaking.

Thorup–Zwick correctness rests on *consistency* between several shortest
path computations (landmark distances, cluster membership thresholds,
shortest-path trees).  Three design decisions here make the rest of the
package sound:

1. **Exact arithmetic by default.**  Experiments use integer edge weights
   (stored in float64, exact up to 2^53), so distance equalities — which
   decide pivot consistency (DESIGN.md §3) — are exact.

2. **(dist, id) lexicographic tie-breaking.**  When two heap entries carry
   the same distance, the smaller vertex/witness id wins.  Every run over
   the same graph yields the same distances, witnesses, and trees.

3. **Truncated Dijkstra** (``truncated_dijkstra``) grows a cluster
   ``C(w) = {v : d(w, v) < threshold(v)}`` by refusing to settle a vertex
   whose tentative distance reaches its threshold.  Because every vertex
   on a shortest path to a cluster member is itself a member (strict
   inequality; see ``repro.core.clusters``), the truncated run returns
   exact distances inside the cluster — this is the engine of TZ §3/§4.

Since the CSR-kernel refactor the single/multi-source and all-pairs entry
points here are thin wrappers over :class:`repro.graphs.csr.CSRKernel`
(reached via the cached ``graph.csr()``); the kernel preserves the exact
deterministic tie-breaking documented above.  Only the truncated-Dijkstra
cluster growth remains a bespoke pure-Python loop (its per-vertex
threshold test has no batched counterpart).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from .graph import Graph

INF = np.inf


def dijkstra(
    graph: Graph,
    source: int,
    *,
    target: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source Dijkstra.

    Returns ``(dist, parent)`` arrays of length ``n``; ``parent[source]``
    is ``-1`` and ``parent[v]`` is ``-1`` for unreachable ``v``.  With
    ``target`` given, stops as soon as the target settles (distances to
    other vertices may then be partial).
    """
    return graph.csr().sssp(source, target=target)


def dijkstra_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Alias of :func:`dijkstra` emphasizing the returned SPT parents."""
    return dijkstra(graph, source)


def multi_source_dijkstra(
    graph: Graph,
    sources: Sequence[int],
    *,
    witness_priority: Optional[Dict[int, int]] = None,
    method: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Distances to the nearest source, plus the *witness* achieving them.

    Returns ``(dist, witness)``: ``dist[v] = min_{a in sources} d(a, v)``
    and ``witness[v]`` the source realizing it.  Ties are broken toward
    the smallest witness id (or smallest ``witness_priority`` value when
    provided), deterministically: the heap orders entries by
    ``(dist, priority(witness), witness)`` and witnesses propagate along
    relaxed edges, so ``witness[v]`` is reachable from ``v`` at distance
    exactly ``dist[v]``.

    If ``sources`` is empty all distances are ``inf`` and witnesses ``-1``.

    Delegates to the CSR kernel's batched multi-source sweep
    (:meth:`repro.graphs.csr.CSRKernel.multi_source`), which reproduces
    this exact tie-break; ``method`` selects the engine (``"auto"``,
    ``"scipy"``, or the pure-Python reference ``"heap"``).
    """
    return graph.csr().multi_source(
        sources, witness_priority=witness_priority, method=method
    )


def truncated_dijkstra(
    graph: Graph,
    source: int,
    threshold: np.ndarray,
    *,
    cap: Optional[int] = None,
) -> Tuple[Dict[int, float], Dict[int, int], bool]:
    """Grow the cluster ``C(source) = {v : d(source, v) < threshold[v]}``.

    Runs Dijkstra from ``source`` but *settles* (and relaxes out of) a
    vertex ``v`` only while ``d(source, v) < threshold[v]``.  The source
    itself is always settled (TZ define clusters for the scheme such that
    ``w \\in C(w)``; callers that want the strict definition can drop it).

    Returns ``(dist, parent, capped)`` over cluster members only.  With
    ``cap`` given, aborts early once more than ``cap`` vertices settled
    (``capped=True``) — used by the ``center`` algorithm, which only needs
    to know *whether* a cluster exceeds ``4n/s``.
    """
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range")
    if threshold.shape != (n,):
        raise GraphError(f"threshold must have shape ({n},)")
    dist: Dict[int, float] = {}
    parent: Dict[int, int] = {}
    seen: Dict[int, float] = {source: 0.0}
    seen_parent: Dict[int, int] = {source: -1}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    indptr, adj, wts = graph.indptr, graph.adj, graph.adj_weights
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        if u != source and d >= threshold[u]:
            continue  # u is outside the cluster: do not settle or relax.
        dist[u] = d
        parent[u] = seen_parent[u]
        if cap is not None and len(dist) > cap:
            return dist, parent, True
        for i in range(indptr[u], indptr[u + 1]):
            v = adj[i]
            if v in dist:
                continue
            nd = d + wts[i]
            if nd >= threshold[v]:
                continue  # v cannot be a cluster member via this path.
            old = seen.get(v)
            if old is None or nd < old or (nd == old and u < seen_parent[v]):
                seen[v] = nd
                seen_parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent, False


def sssp_from_set(
    graph: Graph, sources: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized single-source runs from each vertex in ``sources``.

    Returns ``(dist, predecessors, sources_arr)`` where ``dist`` has shape
    ``(len(sources), n)`` — scipy-backed, used for landmark SPTs where the
    per-tree tie-breaking need not match the pure-Python runs (any SPT of
    the full graph is valid; see DESIGN.md §3).
    """
    src = np.asarray(sources, dtype=np.int64)
    dist, pred = graph.csr().sssp_batch(src)
    return dist, pred, src


def all_pairs_shortest_paths(graph: Graph) -> np.ndarray:
    """All-pairs distances, ``(n, n)`` float array (CSR-kernel backed)."""
    return graph.csr().all_pairs()


def path_from_parents(parent: np.ndarray, source: int, target: int) -> List[int]:
    """Reconstruct the source→target path from a Dijkstra parent array.

    Raises :class:`GraphError` if ``target`` is unreachable.
    """
    if target == source:
        return [source]
    if parent[target] < 0:
        raise GraphError(f"vertex {target} unreachable from {source}")
    path = [target]
    v = target
    while v != source:
        v = int(parent[v])
        path.append(v)
        if len(path) > parent.shape[0]:
            raise GraphError("parent array contains a cycle")
    path.reverse()
    return path


def path_weight(graph: Graph, path: Sequence[int]) -> float:
    """Total weight of a vertex path (consecutive pairs must be edges)."""
    return sum(graph.edge_weight(path[i], path[i + 1]) for i in range(len(path) - 1))
