"""Cross-checks of graph-substrate invariants.

These are used by the test suite and by the failure-injection ablation
(A2) to demonstrate *which* invariant each scheme depends on.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .graph import Graph
from .ports import PortedGraph


def check_graph(graph: Graph) -> None:
    """Validate the CSR structure of ``graph``; raises on any violation."""
    n, m = graph.n, graph.m
    if graph.indptr.shape != (n + 1,):
        raise GraphError("indptr has wrong shape")
    if graph.indptr[0] != 0 or graph.indptr[-1] != 2 * m:
        raise GraphError("indptr endpoints are wrong")
    if np.any(np.diff(graph.indptr) < 0):
        raise GraphError("indptr must be non-decreasing")
    if graph.adj.shape != (2 * m,) or graph.adj_weights.shape != (2 * m,):
        raise GraphError("arc arrays have wrong shape")
    for u in range(n):
        row = graph.neighbors(u)
        if row.size and (np.any(np.diff(row) <= 0)):
            raise GraphError(f"adjacency row of {u} not strictly increasing")
        for i, v in enumerate(row):
            # Symmetry: v's row must contain u with the same weight.
            back = graph.neighbors(int(v))
            j = int(np.searchsorted(back, u))
            if j >= back.size or back[j] != u:
                raise GraphError(f"edge ({u},{v}) not symmetric")
            if graph.neighbor_weights(int(v))[j] != graph.neighbor_weights(u)[i]:
                raise GraphError(f"edge ({u},{v}) weight not symmetric")
    # Arc -> edge id consistency.
    for u in range(n):
        for i in range(int(graph.indptr[u]), int(graph.indptr[u + 1])):
            eid = int(graph.arc_edge[i])
            a, b = int(graph.edges[eid, 0]), int(graph.edges[eid, 1])
            v = int(graph.adj[i])
            if {a, b} != {u, v}:
                raise GraphError(f"arc {i} maps to unrelated edge {eid}")
            if graph.adj_weights[i] != graph.edge_weights[eid]:
                raise GraphError(f"arc {i} weight disagrees with edge {eid}")


def check_ports(pg: PortedGraph) -> None:
    """Validate that ports at each vertex are a permutation of 1..deg and
    that ``step``/``port`` are mutually inverse."""
    g = pg.graph
    for u in range(g.n):
        deg = g.degree(u)
        ports = sorted(
            int(pg.port_of_arc[i]) for i in range(int(g.indptr[u]), int(g.indptr[u + 1]))
        )
        if ports != list(range(1, deg + 1)):
            raise GraphError(f"ports at {u} are not a permutation of 1..{deg}")
        for v in g.neighbors(u):
            v = int(v)
            if pg.step(u, pg.port(u, v)) != v:
                raise GraphError(f"step/port mismatch at ({u},{v})")
