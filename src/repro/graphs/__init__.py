"""Graph substrate: CSR graphs, generators, shortest paths, rooted trees,
and the port model routing schemes operate on."""

from .csr import CSRKernel
from .delta import GraphDelta, apply_delta
from .graph import Graph, GraphBuilder
from .ports import PortedGraph, assign_ports
from .shortest_paths import (
    dijkstra,
    dijkstra_tree,
    multi_source_dijkstra,
    truncated_dijkstra,
    all_pairs_shortest_paths,
)
from .trees import RootedTree, tree_from_parents, tree_from_predecessors

__all__ = [
    "CSRKernel",
    "Graph",
    "GraphBuilder",
    "GraphDelta",
    "apply_delta",
    "PortedGraph",
    "assign_ports",
    "dijkstra",
    "dijkstra_tree",
    "multi_source_dijkstra",
    "truncated_dijkstra",
    "all_pairs_shortest_paths",
    "RootedTree",
    "tree_from_parents",
    "tree_from_predecessors",
]
