"""Persistent scheme store and zero-copy serving layer.

Preprocess once, answer forever — on disk.  This package persists both
scheme forms (:class:`~repro.core.build.arrays.SchemeArrays` and the
batch engine's :class:`~repro.sim.engine.compile.CompiledScheme`) in a
single mmap-friendly container, caches them content-addressed by
``(graph, k, seed, ports)``, and serves traffic matrices straight off
the file mapping:

* :mod:`repro.store.format` — the binary container (JSON header +
  aligned array blobs, zero-copy open, strict corruption detection);
* :mod:`repro.store.store` — :class:`SchemeStore`, the
  ``get_or_build`` memo table, plus the bit-exact strict-verify replay
  against :mod:`repro.core.serialize`;
* :mod:`repro.store.service` — :class:`RouteService`, the serving
  front door with optional source-sharding across worker processes.
"""

from .format import FORMAT_VERSION, read_container, write_container
from .service import RouteService
from .store import (
    POINTER_SUFFIX,
    STORE_SUFFIX,
    SchemeStore,
    StoredScheme,
    graph_content_hash,
    port_hash,
    scheme_key,
    serialize_digest,
)

__all__ = [
    "FORMAT_VERSION",
    "POINTER_SUFFIX",
    "RouteService",
    "STORE_SUFFIX",
    "SchemeStore",
    "StoredScheme",
    "graph_content_hash",
    "port_hash",
    "read_container",
    "scheme_key",
    "serialize_digest",
    "write_container",
]
