"""A persistent, content-addressed cache of compiled TZ schemes.

The Thorup–Zwick value proposition is *preprocess once, answer
forever* — so the preprocessing result must outlive the process.
:class:`SchemeStore` is a directory of ``.tzs`` containers keyed by the
SHA-256 of everything the scheme is a pure function of::

    key = H(graph content, k, seed, port assignment, format version)

``get_or_build(graph, k, seed)`` therefore behaves like a memo table
over construction itself: a hit opens the file and returns a
memory-mapped :class:`StoredScheme` in milliseconds; a miss runs the
vectorized builder, compiles the batch-engine form, saves both, and
re-opens the file (so the returned object is always file-backed, hit or
miss).

Each container holds the two scheme forms side by side:

* the canonical :class:`~repro.core.build.arrays.SchemeArrays` — what
  both builders emit and the differential suite compares; enough to
  re-materialize the dict-based scheme or re-resolve against a
  different port assignment;
* the port-resolved :class:`~repro.sim.engine.compile.CompiledScheme` —
  exactly what :class:`~repro.sim.engine.batch.BatchRouter` routes on,
  ready to serve with no further work.

Strict-verify mode (``strict=True``) closes the loop against the
package's independent bit-exact codec: at save time the dict scheme is
materialized from the arrays and every vertex table is serialized
through :mod:`repro.core.serialize`; the SHA-256 of that bit stream is
recorded in the header.  At load time the same replay runs over the
*memory-mapped* arrays and must reproduce the digest bit for bit — any
disagreement between the array form and the bitstream form (or any
silent corruption of the blobs) raises
:class:`~repro.errors.EncodingError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core.build import build_arrays, resolve_builder
from ..core.build.arrays import SchemeArrays, scheme_from_arrays
from ..errors import EncodingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph, assign_ports
from ..obs import TELEMETRY
from ..sim.engine.compile import CompiledScheme, compile_from_arrays
from .format import FORMAT_VERSION, _tmp_counter, read_container, write_container
from .schemes import (
    arrays_from_manifest,
    arrays_to_manifest,
    backend_from_blobs,
    backend_to_blobs,
    compiled_from_manifest,
    compiled_to_manifest,
)

STORE_SUFFIX = ".tzs"
POINTER_SUFFIX = ".current"


def graph_content_hash(graph: Graph) -> str:
    """SHA-256 of the graph's content (vertices, edges, weights)."""
    h = hashlib.sha256()
    h.update(f"graph:{graph.n}:{graph.m}:".encode())
    h.update(np.ascontiguousarray(graph.edges, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.edge_weights, dtype=np.float64).tobytes())
    return h.hexdigest()


def port_hash(ported: PortedGraph) -> str:
    """SHA-256 of the port assignment (the fixed-port adversary's choice)."""
    h = hashlib.sha256()
    h.update(b"ports:")
    h.update(np.ascontiguousarray(ported.port_of_arc, dtype=np.int64).tobytes())
    return h.hexdigest()


def scheme_key(
    graph_sha: str,
    k: int,
    seed: Optional[int],
    port_sha: str,
    *,
    handshake: bool = False,
) -> str:
    """The content address of one scheme build (see module docstring).

    ``handshake`` is part of the address: the §4 handshake variant
    selects different trees than the plain 4k−5 scheme, so the two must
    never share a store entry.
    """
    payload = json.dumps(
        {
            "format": FORMAT_VERSION,
            "graph": graph_sha,
            "k": int(k),
            "seed": None if seed is None else int(seed),
            "ports": port_sha,
            "handshake": bool(handshake),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:40]


def serialize_digest(graph: Graph, ported: PortedGraph, arrays: SchemeArrays) -> str:
    """SHA-256 of the scheme's bit-exact serialization.

    Replays the :mod:`repro.core.serialize` codec over the dict scheme
    materialized from ``arrays``: every vertex table becomes an actual
    bit stream, and the streams are hashed in vertex order with
    self-delimiting length prefixes.  Two array forms digest equal iff
    the codec encodes them to identical bits.
    """
    from ..core.serialize import serialize_scheme

    scheme = scheme_from_arrays(graph, ported, arrays)
    blobs = serialize_scheme(scheme)
    h = hashlib.sha256()
    for u in range(scheme.n):
        blob = blobs[u]
        h.update(len(blob).to_bytes(8, "little"))
        h.update(blob)
    return h.hexdigest()


@dataclass
class StoredScheme:
    """A scheme opened from (or just written to) the store.

    ``compiled`` and ``arrays`` are backed by one shared memory map of
    ``path`` — dropping all references releases the mapping.
    """

    path: Path
    meta: dict
    compiled: CompiledScheme
    arrays: SchemeArrays

    @property
    def key(self) -> str:
        """The scheme's content address in the store."""
        return self.meta["key"]

    def router(self, ported: Optional[PortedGraph] = None):
        """A :class:`~repro.sim.engine.batch.BatchRouter` over this
        scheme.  ``ported`` is only needed for dead-edge simulation."""
        from ..sim.engine.batch import BatchRouter

        return BatchRouter.from_compiled(self.compiled, ported)

    def scheme(self, graph: Graph, ported: PortedGraph):
        """Materialize the dict-based scheme (reference-simulator world)."""
        return scheme_from_arrays(graph, ported, self.arrays)


class SchemeStore:
    """Directory-backed scheme cache (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        """Open (creating if needed) the store directory at ``root``."""
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Container path of content address ``key``."""
        return self.root / f"{key}{STORE_SUFFIX}"

    def key_for(
        self,
        graph: Graph,
        k: int,
        seed: Optional[int],
        ported: PortedGraph,
        *,
        handshake: bool = False,
    ) -> str:
        """Content address of ``(graph, k, seed, ported)`` (see :func:`scheme_key`)."""
        return scheme_key(
            graph_content_hash(graph), k, seed, port_hash(ported), handshake=handshake
        )

    def __contains__(self, key: str) -> bool:
        """Whether a container for content address ``key`` exists."""
        return self.path_for(key).exists()

    def keys(self):
        """Sorted content addresses of every stored scheme."""
        return sorted(p.stem for p in self.root.glob(f"*{STORE_SUFFIX}"))

    # ------------------------------------------------------------------
    def save(
        self,
        graph: Graph,
        ported: PortedGraph,
        arrays: SchemeArrays,
        *,
        seed: Optional[int] = None,
        compiled: Optional[CompiledScheme] = None,
        strict: bool = False,
        builder: str = "vectorized",
        extra_meta: Optional[dict] = None,
    ) -> Path:
        """Persist one built scheme; returns the container path.

        ``strict=True`` additionally records the bit-exact serialization
        digest (see :func:`serialize_digest`) so strict loads can replay
        and compare it.  ``extra_meta`` entries are merged into the
        container header (the version layer rides on this).
        """
        with TELEMETRY.span("store.save", k=int(arrays.k), n=int(arrays.n)):
            if compiled is None:
                compiled = compile_from_arrays(arrays, ported)
            graph_sha = graph_content_hash(graph)
            port_sha = port_hash(ported)
            key = scheme_key(
                graph_sha, arrays.k, seed, port_sha, handshake=compiled.handshake
            )
            meta = {
                "kind": "tz-scheme",
                "key": key,
                "graph_sha256": graph_sha,
                "port_sha256": port_sha,
                "n": int(arrays.n),
                "m": int(graph.m),
                "k": int(arrays.k),
                "seed": None if seed is None else int(seed),
                "builder": builder,
                "id_bits": int(compiled.id_bits),
                "handshake": bool(compiled.handshake),
                "entries": int(arrays.entry_count),
            }
            if strict:
                meta["serialize_sha256"] = serialize_digest(graph, ported, arrays)
            if extra_meta:
                meta.update(extra_meta)
            blobs = arrays_to_manifest(arrays)
            blobs.update(compiled_to_manifest(compiled))
            path = self.path_for(key)
            write_container(path, blobs, meta)
            return path

    def load(
        self,
        key_or_path: Union[str, Path],
        *,
        mmap: bool = True,
        strict: bool = False,
        verify_data: bool = False,
        graph: Optional[Graph] = None,
        ported: Optional[PortedGraph] = None,
    ) -> StoredScheme:
        """Open a stored scheme, zero-copy by default.

        ``verify_data=True`` checks the data-section checksum (one
        sequential read).  ``strict=True`` implies that and additionally
        replays the bit-exact serialization codec over the loaded arrays
        (requires ``graph`` and ``ported``, which are also checked
        against the stored content hashes).  Raises
        :class:`~repro.errors.EncodingError` on any mismatch.
        """
        path = (
            Path(key_or_path)
            if isinstance(key_or_path, Path) or str(key_or_path).endswith(STORE_SUFFIX)
            else self.path_for(str(key_or_path))
        )
        with TELEMETRY.span("store.load", mmap=bool(mmap)):
            header, blobs = read_container(
                path, mmap=mmap, verify_data=strict or verify_data
            )
            meta = header.get("meta", {})
            if meta.get("kind") != "tz-scheme":
                raise EncodingError(f"{path} is not a scheme container")
            n, k = int(meta["n"]), int(meta["k"])
            arrays = arrays_from_manifest(blobs, n, k)
            compiled = compiled_from_manifest(
                blobs, n, k, int(meta["id_bits"]), bool(meta["handshake"])
            )
            stored = StoredScheme(
                path=path, meta=meta, compiled=compiled, arrays=arrays
            )
            if strict:
                self._verify_strict(stored, graph, ported)
            return stored

    def _verify_strict(
        self,
        stored: StoredScheme,
        graph: Optional[Graph],
        ported: Optional[PortedGraph],
    ) -> None:
        """Replay the bit-exact codec digest over a loaded scheme."""
        if graph is None or ported is None:
            raise EncodingError(
                "strict verification needs the graph and port assignment "
                "to replay the serialization codec"
            )
        if graph_content_hash(graph) != stored.meta["graph_sha256"]:
            raise EncodingError(
                "stored scheme was built on a different graph "
                "(content hash mismatch)"
            )
        if port_hash(ported) != stored.meta["port_sha256"]:
            raise EncodingError(
                "stored scheme was built on a different port assignment"
            )
        expect = stored.meta.get("serialize_sha256")
        if expect is None:
            raise EncodingError(
                "store file carries no serialization digest; re-save with "
                "strict=True to enable strict verification"
            )
        got = serialize_digest(graph, ported, stored.arrays)
        if got != expect:
            raise EncodingError(
                "bit-exact serialization replay disagrees with the stored "
                f"digest ({got[:12]}… != {expect[:12]}…): the array form "
                "and the bitstream form have diverged"
            )

    # ------------------------------------------------------------------
    # Versioned lineages: publish / publish_patch / current / gc
    # ------------------------------------------------------------------
    def pointer_path(self, lineage: str) -> Path:
        """The lineage's ``.current`` pointer file (atomic, text key)."""
        return self.root / f"{lineage}{POINTER_SUFFIX}"

    def set_current(self, lineage: str, key: str) -> None:
        """Atomically repoint the lineage's current version to ``key``.

        Same publish discipline as the containers themselves: a unique
        per-writer tmp name plus one ``rename``, so concurrent
        publishers race to a *complete* pointer and readers can never
        observe a half-written one.
        """
        pointer = self.pointer_path(lineage)
        tmp = pointer.with_suffix(
            pointer.suffix + f".tmp.{os.getpid()}.{_tmp_counter()}"
        )
        tmp.write_text(key + "\n")
        tmp.replace(pointer)

    def current(self, lineage: str) -> Optional[str]:
        """Key of the lineage's current version (``None`` if unpublished)."""
        pointer = self.pointer_path(lineage)
        try:
            key = pointer.read_text().strip()
        except OSError:
            return None
        return key or None

    def current_path(self, lineage: str) -> Optional[Path]:
        """Container path of the lineage's current version."""
        key = self.current(lineage)
        return None if key is None else self.path_for(key)

    def lineages(self) -> List[str]:
        """Sorted lineage ids that have a published pointer."""
        return sorted(p.name[: -len(POINTER_SUFFIX)] for p in self.root.glob(f"*{POINTER_SUFFIX}"))

    def publish(
        self,
        graph: Graph,
        ported: PortedGraph,
        arrays: SchemeArrays,
        *,
        seed: Optional[int] = None,
        compiled: Optional[CompiledScheme] = None,
        strict: bool = False,
        builder: str = "vectorized",
    ) -> str:
        """Save a scheme as the **root version** of a new lineage.

        The lineage id is the root's own content key; the ``.current``
        pointer is created atomically pointing at it.  Returns the key.
        """
        if compiled is None:
            compiled = compile_from_arrays(arrays, ported)
        key = scheme_key(
            graph_content_hash(graph),
            arrays.k,
            seed,
            port_hash(ported),
            handshake=compiled.handshake,
        )
        self.save(
            graph,
            ported,
            arrays,
            seed=seed,
            compiled=compiled,
            strict=strict,
            builder=builder,
            extra_meta={
                "lineage": key,
                "version": 0,
                "parent_key": None,
                "delta_sha256": None,
            },
        )
        self.set_current(key, key)
        return key

    def publish_patch(
        self,
        parent: Union[str, StoredScheme],
        graph: Graph,
        ported: PortedGraph,
        arrays: SchemeArrays,
        *,
        delta,
        seed: Optional[int] = None,
        compiled: Optional[CompiledScheme] = None,
        strict: bool = False,
        builder: str = "patch",
        max_versions: Optional[int] = None,
    ) -> str:
        """Save a new version derived from ``parent`` by ``delta``.

        Writes a content-addressed container whose header links it to
        its parent (``parent_key``, the delta's SHA-256, the incremented
        ``version``), atomically repoints the lineage's ``.current``,
        and — when ``max_versions`` is given — garbage-collects older
        versions beyond that count.  Returns the new key.
        """
        parent_key = parent.key if isinstance(parent, StoredScheme) else str(parent)
        parent_path = self.path_for(parent_key)
        if not parent_path.exists():
            raise EncodingError(
                f"cannot publish a patch of {parent_key}: no such stored scheme"
            )
        parent_meta = read_container(parent_path)[0].get("meta", {})
        lineage = parent_meta.get("lineage") or parent_key
        version = int(parent_meta.get("version", 0)) + 1
        if compiled is None:
            compiled = compile_from_arrays(arrays, ported)
        key = scheme_key(
            graph_content_hash(graph),
            arrays.k,
            seed,
            port_hash(ported),
            handshake=compiled.handshake,
        )
        with TELEMETRY.span("store.publish_patch", lineage=lineage, version=version):
            self.save(
                graph,
                ported,
                arrays,
                seed=seed,
                compiled=compiled,
                strict=strict,
                builder=builder,
                extra_meta={
                    "lineage": lineage,
                    "version": version,
                    "parent_key": parent_key,
                    "delta_sha256": delta.digest() if delta is not None else None,
                },
            )
            self.set_current(lineage, key)
            if max_versions is not None:
                self.gc(lineage, max_versions)
        return key

    def versions(self, lineage: str) -> List[dict]:
        """Header meta of every stored version of ``lineage``, sorted by
        version number (legacy containers count as their own lineage)."""
        out = []
        for key in self.keys():
            meta = read_container(self.path_for(key))[0].get("meta", {})
            if meta.get("kind") != "tz-scheme":
                continue
            if (meta.get("lineage") or meta.get("key")) == lineage:
                out.append(meta)
        out.sort(key=lambda m: (int(m.get("version", 0)), m.get("key", "")))
        return out

    def info(self, key: str) -> dict:
        """Header meta plus file facts for one stored container."""
        path = self.path_for(key)
        header = read_container(path)[0]
        meta = dict(header.get("meta", {}))
        meta["path"] = str(path)
        meta["file_bytes"] = int(path.stat().st_size)
        meta["data_sha256"] = header.get("data_sha256")
        return meta

    def gc(self, lineage: str, max_versions: int) -> List[str]:
        """Delete all but the newest ``max_versions`` versions of a
        lineage; the pointer target is never deleted.  Returns the
        removed keys."""
        if max_versions < 1:
            raise ValueError(f"max_versions must be >= 1, got {max_versions}")
        metas = self.versions(lineage)
        current = self.current(lineage)
        removed = []
        for meta in metas[:-max_versions] if len(metas) > max_versions else []:
            key = meta.get("key")
            if key is None or key == current:
                continue
            self.path_for(key).unlink(missing_ok=True)
            removed.append(key)
        if removed:
            TELEMETRY.count("store.gc_removed", len(removed))
        return removed

    # ------------------------------------------------------------------
    # Backend-generic persistence (the Backend protocol's store hook)
    # ------------------------------------------------------------------
    def backend_key_for(
        self, name: str, graph: Graph, k: int, seed: Optional[int]
    ) -> str:
        """Content address of one backend build (name in the key, so the
        same graph can hold every registered backend side by side)."""
        payload = json.dumps(
            {
                "format": FORMAT_VERSION,
                "backend": str(name),
                "graph": graph_content_hash(graph),
                "k": int(k),
                "seed": None if seed is None else int(seed),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:40]

    def save_backend(
        self,
        backend,
        graph: Graph,
        *,
        k: int = 2,
        seed: Optional[int] = 0,
    ) -> Path:
        """Persist any registered :class:`~repro.backends.base.Backend`.

        The backend's :meth:`serialize` manifest lands in the same
        ``.tzs`` container format as the TZ scheme itself: its named
        arrays become ``bk_``-prefixed blobs, its scalar meta rides in
        the JSON header, and :meth:`load_backend` dispatches the reverse
        through the backend registry.  Returns the container path.
        """
        backend_meta, backend_blobs = backend.serialize()
        key = self.backend_key_for(backend.backend_name, graph, k, seed)
        meta = {
            "kind": "tz-backend",
            "key": key,
            "backend": backend.backend_name,
            "graph_sha256": graph_content_hash(graph),
            "n": int(backend.n),
            "k": int(k),
            "seed": None if seed is None else int(seed),
            "backend_meta": dict(backend_meta),
            "backend_blobs": sorted(backend_blobs),
        }
        path = self.path_for(key)
        write_container(path, backend_to_blobs(backend_blobs), meta)
        return path

    def load_backend(
        self,
        key_or_path: Union[str, Path],
        *,
        mmap: bool = True,
        verify_data: bool = False,
    ):
        """Open a stored backend, zero-copy by default.

        The container's ``backend`` name selects the registered class
        (:func:`repro.backends.registry.get_backend`); its
        :meth:`deserialize` must answer queries bit for bit like the
        instance that was saved (the contract suite enforces it).
        """
        from ..backends.registry import get_backend

        path = (
            Path(key_or_path)
            if isinstance(key_or_path, Path) or str(key_or_path).endswith(STORE_SUFFIX)
            else self.path_for(str(key_or_path))
        )
        header, blobs = read_container(path, mmap=mmap, verify_data=verify_data)
        meta = header.get("meta", {})
        if meta.get("kind") != "tz-backend":
            raise EncodingError(f"{path} is not a backend container")
        cls = get_backend(str(meta["backend"]))
        found = backend_from_blobs(blobs, tuple(meta["backend_blobs"]))
        return cls.deserialize(dict(meta["backend_meta"]), found)

    def get_or_build_backend(
        self,
        name: str,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        mmap: bool = True,
        kernel: str = "auto",
    ):
        """Memo table over backend construction, like :meth:`get_or_build`.

        A hit opens the container and returns the deserialized backend;
        a miss builds through the registry, saves, and re-opens (so the
        returned instance is always the file-backed one, hit or miss).
        ``kernel`` is the construction-time compute backend of a miss
        (bit-identical outputs either way, so not part of the key).
        """
        from ..backends.registry import build_backend

        key = self.backend_key_for(name, graph, k, seed)
        path = self.path_for(key)
        tm = TELEMETRY
        if tm.enabled:
            tm.count(
                "store.backend_hits" if path.exists() else "store.backend_misses"
            )
        with tm.span("store.get_or_build_backend", backend=name, k=k):
            if not path.exists():
                backend = build_backend(
                    name, graph, k, seed, ported=ported, kernel=kernel
                )
                self.save_backend(backend, graph, k=k, seed=seed)
            return self.load_backend(path, mmap=mmap)

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = None,
        *,
        ported: Optional[PortedGraph] = None,
        builder: Optional[str] = None,
        strict: bool = False,
        mmap: bool = True,
        method: Optional[str] = None,
        kernel: str = "auto",
    ) -> StoredScheme:
        """The front door: a memo table over scheme construction.

        Returns the mmap-backed stored scheme for ``(graph, k, seed,
        ported)``, building, compiling and saving it first if the store
        has no entry.  The build threads ``seed`` through the same
        hierarchy-sampling path as :func:`repro.core.build.build_arrays`,
        so a store hit is bit-identical to what the miss would build —
        and so is either value of ``kernel`` (the build-time frontier
        backend, see :mod:`repro.kernels`; it is not part of the store
        key).  ``method=`` is the deprecated alias of ``builder=``.
        """
        builder = resolve_builder(builder, method)
        if ported is None:
            ported = assign_ports(graph, "sorted")
        key = self.key_for(graph, k, seed, ported)
        path = self.path_for(key)
        tm = TELEMETRY
        if tm.enabled:
            tm.count("store.hits" if path.exists() else "store.misses")
        with tm.span("store.get_or_build", k=k, hit=path.exists()):
            return self._get_or_build(
                graph, k, seed, ported, builder, strict, mmap, path, kernel
            )

    def _get_or_build(
        self, graph, k, seed, ported, builder, strict, mmap, path, kernel="auto"
    ) -> StoredScheme:
        """Build-save-load behind :meth:`get_or_build` (key resolved)."""
        if path.exists() and strict:
            header, _ = read_container(path)
            if header.get("meta", {}).get("serialize_sha256") is None:
                # Saved without a digest: upgrade in place.  The data
                # checksum (verify_data) proves the blobs are the ones
                # the original save wrote, so digesting the stored
                # arrays is equivalent to having digested at save time —
                # no rebuild needed.
                prior = self.load(path, verify_data=True)
                self.save(
                    graph,
                    ported,
                    prior.arrays,
                    seed=seed,
                    compiled=prior.compiled,
                    strict=True,
                    builder=prior.meta.get("builder", builder),
                )
        if not path.exists():
            arrays = build_arrays(
                graph, k, ported=ported, builder=builder, rng=seed, kernel=kernel
            )
            self.save(
                graph, ported, arrays, seed=seed, strict=strict, builder=builder
            )
        return self.load(path, mmap=mmap, strict=strict, graph=graph, ported=ported)
