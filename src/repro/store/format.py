"""The on-disk container: a JSON header plus aligned raw array blobs.

One ``.tzs`` file holds a named set of numpy arrays (an *array
manifest*) and a small JSON header.  The layout is append-free and
mmap-friendly::

    magic   b"TZSCHEME"                      (8 bytes)
    version uint32 LE                        (4 bytes)
    hlen    uint64 LE                        (8 bytes)  header byte length
    hcrc    uint32 LE                        (4 bytes)  crc32 of the header
    header  JSON (UTF-8), ``hlen`` bytes
    ...pad to a 64-byte boundary...
    blobs   each array's raw little-endian bytes, 64-byte aligned

The header carries, per array, ``(dtype, shape, offset, nbytes)`` with
offsets relative to the data section, plus caller metadata (``meta``),
the total data size, and a SHA-256 of the data section.  Opening a file
is therefore O(header): :func:`read_container` parses the header and
returns **views into one memory map** — no array byte is copied or even
paged in until routing touches it.  That is what makes a saved scheme
usable in milliseconds regardless of size.

Every malformed-input path raises :class:`~repro.errors.EncodingError`
(bad magic, unsupported version, header corruption, truncation, arrays
pointing outside the file), so a damaged store file can never be
mistaken for a scheme.  Flipped bits *inside* array blobs are invisible
to the zero-copy open by design; pass ``verify_data=True`` (or use the
store's strict mode) to pay one sequential read and check the data
SHA-256.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import zlib
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from ..errors import EncodingError

MAGIC = b"TZSCHEME"
FORMAT_VERSION = 1
_ALIGN = 64
_PREAMBLE = len(MAGIC) + 4 + 8 + 4
_tmp_counter = itertools.count().__next__


def _align(offset: int) -> int:
    """Round ``offset`` up to the container's 64-byte alignment."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _le(array: np.ndarray) -> np.ndarray:
    """The array in little-endian byte order (no copy when already LE)."""
    dt = array.dtype.newbyteorder("<")
    return np.ascontiguousarray(array, dtype=dt)


def write_container(
    path: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    meta: dict,
) -> dict:
    """Write ``arrays`` + ``meta`` to ``path``; returns the full header.

    Arrays are laid out 64-byte aligned in sorted-name order; the header
    records the manifest and a SHA-256 over the whole data section.
    """
    manifest = {}
    offset = 0
    ordered = sorted(arrays)
    digest = hashlib.sha256()
    blobs = []
    for name in ordered:
        arr = _le(np.asarray(arrays[name]))
        offset = _align(offset)
        manifest[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": int(arr.nbytes),
        }
        blobs.append((offset, arr))
        offset += arr.nbytes
    data_bytes = offset

    pos = 0
    for off, arr in blobs:
        if off > pos:
            digest.update(bytes(off - pos))
        digest.update(arr.tobytes())
        pos = off + arr.nbytes

    header = {
        "format_version": FORMAT_VERSION,
        "meta": meta,
        "arrays": manifest,
        "data_bytes": data_bytes,
        "data_sha256": digest.hexdigest(),
    }
    hjson = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PREAMBLE + len(hjson))

    path = Path(path)
    # Unique per-writer tmp name: concurrent writers of the same key each
    # publish a complete file via rename; last replace wins, and no
    # reader ever maps a half-written container.
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}.{_tmp_counter()}")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(np.uint32(FORMAT_VERSION).tobytes())
        fh.write(np.uint64(len(hjson)).tobytes())
        fh.write(np.uint32(zlib.crc32(hjson)).tobytes())
        fh.write(hjson)
        fh.write(bytes(data_start - _PREAMBLE - len(hjson)))
        pos = 0
        for off, arr in blobs:
            if off > pos:
                fh.write(bytes(off - pos))
            fh.write(arr.tobytes())
            pos = off + arr.nbytes
        fh.write(bytes(data_bytes - pos))
    tmp.replace(path)  # atomic: readers never observe a half-written store
    return header


def _fail(path: Path, why: str) -> EncodingError:
    """A uniformly-worded corruption error for ``path``."""
    return EncodingError(f"cannot open scheme store {path}: {why}")


def read_container(
    path: Union[str, Path],
    *,
    mmap: bool = True,
    verify_data: bool = False,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Open a container; returns ``(header, {name: array})``.

    With ``mmap=True`` every array is a read-only view into one shared
    memory map (zero-copy); otherwise the file is read into memory once.
    ``verify_data=True`` additionally checks the data section against the
    stored SHA-256 (a full sequential read).  Raises
    :class:`~repro.errors.EncodingError` on any structural damage.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise _fail(path, str(exc)) from exc
    if size < _PREAMBLE:
        raise _fail(path, f"file is {size} bytes, shorter than the preamble")
    if mmap:
        raw = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        raw = np.frombuffer(path.read_bytes(), dtype=np.uint8)

    if bytes(raw[: len(MAGIC)]) != MAGIC:
        raise _fail(path, "bad magic (not a TZ scheme store)")
    version = int.from_bytes(bytes(raw[8:12]), "little")
    if version != FORMAT_VERSION:
        raise _fail(
            path,
            f"format version {version} is not the supported {FORMAT_VERSION}",
        )
    hlen = int.from_bytes(bytes(raw[12:20]), "little")
    hcrc = int.from_bytes(bytes(raw[20:24]), "little")
    if _PREAMBLE + hlen > size:
        raise _fail(path, "truncated header")
    hjson = bytes(raw[_PREAMBLE : _PREAMBLE + hlen])
    if zlib.crc32(hjson) != hcrc:
        raise _fail(path, "header checksum mismatch (corrupted file)")
    try:
        header = json.loads(hjson.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _fail(path, f"header is not valid JSON: {exc}") from exc

    data_start = _align(_PREAMBLE + hlen)
    data_bytes = int(header.get("data_bytes", -1))
    if data_bytes < 0 or data_start + data_bytes > size:
        raise _fail(
            path,
            f"truncated data section: header promises {data_bytes} bytes "
            f"at {data_start}, file has {size}",
        )
    if verify_data:
        digest = hashlib.sha256(
            bytes(raw[data_start : data_start + data_bytes])
        ).hexdigest()
        if digest != header.get("data_sha256"):
            raise _fail(path, "data checksum mismatch (corrupted arrays)")

    arrays: Dict[str, np.ndarray] = {}
    for name, spec in header.get("arrays", {}).items():
        try:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(s) for s in spec["shape"])
            off = int(spec["offset"])
            nbytes = int(spec["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _fail(path, f"malformed manifest entry {name!r}") from exc
        want = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes != want or off < 0 or off + nbytes > data_bytes:
            raise _fail(path, f"array {name!r} points outside the data section")
        start = data_start + off
        arrays[name] = raw[start : start + nbytes].view(dtype).reshape(shape)
    return header, arrays
