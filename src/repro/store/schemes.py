"""Manifests: ``SchemeArrays``/``CompiledScheme`` <-> named array dicts.

Both scheme forms are already columnar dataclasses, so persistence is a
field walk: every ndarray field becomes one named blob in the container
(prefixed ``arr_`` for the canonical :class:`SchemeArrays` form,
``cs_`` for the port-resolved :class:`CompiledScheme` form), scalars
ride in the JSON header, and the hierarchy's ragged level sets flatten
into one ``(data, indptr)`` CSR pair.  Loading reverses the walk over
memory-mapped views — the reconstructed objects are backed by the file,
byte for byte, with nothing copied.

Field sets are validated both ways: a container that is missing a field
(or carries an unknown one) raises
:class:`~repro.errors.EncodingError` instead of building a half-formed
scheme.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..core.build.arrays import SchemeArrays
from ..core.landmarks import Hierarchy
from ..errors import EncodingError
from ..sim.engine.compile import CompiledScheme

ARRAYS_PREFIX = "arr_"
COMPILED_PREFIX = "cs_"
BACKEND_PREFIX = "bk_"
_HIERARCHY_FIELDS = ("h_dist", "h_pivot", "h_level_of", "h_levels_data", "h_levels_indptr")


def _ndarray_fields(cls) -> tuple:
    """Names of the ndarray-typed fields of a columnar dataclass."""
    return tuple(
        f.name for f in dataclasses.fields(cls) if f.type in ("np.ndarray", np.ndarray)
    )


ARRAYS_FIELDS = _ndarray_fields(SchemeArrays)
COMPILED_FIELDS = _ndarray_fields(CompiledScheme)


def _check_fields(found, expected, what: str) -> None:
    """Raise :class:`EncodingError` unless the field sets match exactly."""
    missing = sorted(set(expected) - set(found))
    unknown = sorted(set(found) - set(expected))
    if missing or unknown:
        raise EncodingError(
            f"stored {what} does not match this build: "
            f"missing fields {missing}, unknown fields {unknown}"
        )


def hierarchy_to_manifest(hierarchy: Hierarchy) -> Dict[str, np.ndarray]:
    """Flatten a hierarchy (ragged level sets included) into named blobs."""
    levels = [np.asarray(a, dtype=np.int64) for a in hierarchy.levels]
    indptr = np.zeros(len(levels) + 1, dtype=np.int64)
    np.cumsum([a.size for a in levels], out=indptr[1:])
    data = (
        np.concatenate(levels) if levels else np.zeros(0, dtype=np.int64)
    )
    return {
        "h_dist": hierarchy.dist,
        "h_pivot": hierarchy.pivot,
        "h_level_of": hierarchy.level_of,
        "h_levels_data": data,
        "h_levels_indptr": indptr,
    }


def hierarchy_from_manifest(blobs: Dict[str, np.ndarray]) -> Hierarchy:
    """Rebuild a hierarchy from its manifest blobs (zero-copy views)."""
    indptr = blobs["h_levels_indptr"]
    data = blobs["h_levels_data"]
    k = indptr.shape[0] - 1
    levels = [data[indptr[i] : indptr[i + 1]] for i in range(k)]
    return Hierarchy(
        k=k,
        levels=levels,
        dist=blobs["h_dist"],
        pivot=blobs["h_pivot"],
        level_of=blobs["h_level_of"],
    )


def arrays_to_manifest(arrays: SchemeArrays) -> Dict[str, np.ndarray]:
    """All ``arr_``-prefixed blobs of the canonical scheme-array form."""
    out = {
        ARRAYS_PREFIX + name: getattr(arrays, name) for name in ARRAYS_FIELDS
    }
    for name, blob in hierarchy_to_manifest(arrays.hierarchy).items():
        out[ARRAYS_PREFIX + name] = blob
    return out


def arrays_from_manifest(blobs: Dict[str, np.ndarray], n: int, k: int) -> SchemeArrays:
    """Rebuild :class:`SchemeArrays` from container blobs, validated."""
    found = {
        name[len(ARRAYS_PREFIX) :]: blob
        for name, blob in blobs.items()
        if name.startswith(ARRAYS_PREFIX)
    }
    _check_fields(found, ARRAYS_FIELDS + _HIERARCHY_FIELDS, "SchemeArrays")
    hierarchy = hierarchy_from_manifest(found)
    if hierarchy.k != k or hierarchy.n != n:
        raise EncodingError(
            f"stored hierarchy is ({hierarchy.n}, k={hierarchy.k}), "
            f"header says ({n}, k={k})"
        )
    kwargs = {name: found[name] for name in ARRAYS_FIELDS}
    return SchemeArrays(n=n, k=k, hierarchy=hierarchy, **kwargs)


def backend_to_blobs(blobs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Prefix a backend's named serialize() arrays for the container.

    Backends choose their own blob names (the protocol does not fix a
    field set the way the scheme forms do), so the prefix is the only
    container-level convention; the name list is recorded in the header
    and validated back on load.
    """
    return {
        BACKEND_PREFIX + name: np.ascontiguousarray(blob)
        for name, blob in blobs.items()
    }


def backend_from_blobs(
    blobs: Dict[str, np.ndarray], expected: tuple
) -> Dict[str, np.ndarray]:
    """Strip the backend prefix, validated against the header's name list."""
    found = {
        name[len(BACKEND_PREFIX) :]: blob
        for name, blob in blobs.items()
        if name.startswith(BACKEND_PREFIX)
    }
    _check_fields(found, expected, "backend manifest")
    return found


def compiled_to_manifest(compiled: CompiledScheme) -> Dict[str, np.ndarray]:
    """All ``cs_``-prefixed blobs of the port-resolved engine form."""
    return {
        COMPILED_PREFIX + name: getattr(compiled, name)
        for name in COMPILED_FIELDS
    }


def compiled_from_manifest(
    blobs: Dict[str, np.ndarray], n: int, k: int, id_bits: int, handshake: bool
) -> CompiledScheme:
    """Rebuild the routable :class:`CompiledScheme` from container blobs."""
    found = {
        name[len(COMPILED_PREFIX) :]: blob
        for name, blob in blobs.items()
        if name.startswith(COMPILED_PREFIX)
    }
    _check_fields(found, COMPILED_FIELDS, "CompiledScheme")
    return CompiledScheme(
        n=n, k=k, id_bits=id_bits, handshake=handshake, **found
    )
