"""The serving front door: answer traffic matrices from a stored scheme.

:class:`RouteService` opens one ``.tzs`` container (zero-copy, see
:mod:`repro.store.format`) and serves whole traffic matrices through
the vectorized :class:`~repro.sim.engine.batch.BatchRouter`.  Because
the compiled arrays live in a shared file mapping, *any number of
processes can serve the same scheme against the same physical pages* —
the OS page cache is the only copy in the machine.

``route(pairs, shards=N)`` exploits exactly that: the traffic matrix is
partitioned by source vertex across ``N`` worker processes, each worker
memory-maps the same store file, routes its shard, and the per-pair
results are scattered back into the caller's row order.  Rows are
routed independently by construction, so the sharded result is
bit-for-bit the single-process result (tested) — sharding changes wall
time, never answers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import RoutingError
from ..obs import TELEMETRY
from ..sim.engine.batch import BatchResult, BatchRouter


def _shard_results(parts, order, count):
    """Scatter per-shard column arrays back into input-row order."""
    out = {}
    for name in ("source", "dest", "delivered", "weight", "hops", "tree",
                 "max_header_bits", "failure_code"):
        column = np.concatenate([getattr(p, name) for p in parts])
        scattered = np.empty(count, dtype=column.dtype)
        scattered[order] = column
        out[name] = scattered
    return BatchResult(**out)


def _route_shard(
    path: str,
    pairs: np.ndarray,
    ttl: Optional[int],
    record: bool = False,
    kernel: str = "auto",
):
    """Worker entry point: mmap the store file and route one shard.

    With ``record=True`` the worker resets its (possibly fork-inherited)
    telemetry registry, enables it for the duration of the shard, and
    ships the metric snapshot home alongside the result columns and the
    shard's wall time — the parent merges them (spans stay local).
    """
    from time import perf_counter

    if record:
        TELEMETRY.reset()
        TELEMETRY.enable()
    t0 = perf_counter()
    service = RouteService(path, kernel=kernel)
    # Route through the router directly: the parent already counted the
    # serve.* metrics for the whole request, so the merged worker
    # snapshots must carry only the route.*-level ones.
    result = service._router.route_pairs(pairs, ttl=ttl)
    elapsed = perf_counter() - t0
    snapshot = TELEMETRY.snapshot() if record else None
    return (
        result.source,
        result.dest,
        result.delivered,
        result.weight,
        result.hops,
        result.tree,
        result.max_header_bits,
        result.failure_code,
        elapsed,
        snapshot,
    )


class RouteService:
    """Serve traffic matrices from one stored scheme (see module doc)."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        mmap: bool = True,
        kernel: str = "auto",
    ) -> None:
        """Open the container at ``path`` (zero-copy mmap by default).

        ``kernel`` selects the hop-loop backend of the serving router
        (``"numpy"``/``"native"``/``"auto"``, see :mod:`repro.kernels`);
        answers are bit-identical either way.
        """
        from .store import SchemeStore

        self.path = Path(path)
        with TELEMETRY.span("serve.open", mmap=bool(mmap)):
            stored = SchemeStore(self.path.parent).load(self.path, mmap=mmap)
            self.meta = stored.meta
            self.compiled = stored.compiled
            self.kernel = kernel
            self._router = BatchRouter.from_compiled(stored.compiled, kernel=kernel)

    @property
    def n(self) -> int:
        """Vertex count of the served scheme."""
        return self.compiled.n

    @property
    def k(self) -> int:
        """Hierarchy depth of the served scheme."""
        return self.compiled.k

    def route(
        self,
        pairs: np.ndarray,
        *,
        ttl: Optional[int] = None,
        shards: int = 1,
    ) -> BatchResult:
        """Route every ``(s, t)`` row of ``pairs``.

        ``shards > 1`` source-shards the matrix across that many worker
        processes, each memory-mapping this service's store file; the
        result is bit-identical to ``shards=1`` in the input row order.
        """
        pair_arr = np.asarray(pairs, dtype=np.int64)
        if pair_arr.size == 0:
            pair_arr = pair_arr.reshape(0, 2)
        if pair_arr.ndim != 2 or pair_arr.shape[1] != 2:
            raise RoutingError("pairs must be an (m, 2) integer array")
        tm = TELEMETRY
        with tm.span(
            "serve.route", pairs=int(pair_arr.shape[0]), shards=int(max(shards, 1))
        ):
            if tm.enabled:
                tm.count("serve.requests")
                tm.count("serve.pairs", int(pair_arr.shape[0]))
            if shards <= 1 or pair_arr.shape[0] < 2:
                if tm.enabled:
                    from time import perf_counter

                    t0 = perf_counter()
                    result = self._router.route_pairs(pair_arr, ttl=ttl)
                    elapsed = perf_counter() - t0
                    tm.observe("serve.shard_seconds", elapsed)
                    if elapsed > 0:
                        tm.gauge(
                            "serve.pairs_per_second", pair_arr.shape[0] / elapsed
                        )
                    return result
                return self._router.route_pairs(pair_arr, ttl=ttl)
            return self._route_sharded(pair_arr, ttl, int(shards))

    def _route_sharded(
        self, pair_arr: np.ndarray, ttl: Optional[int], shards: int
    ) -> BatchResult:
        """Fan one traffic matrix out across worker processes."""
        import concurrent.futures as cf
        from time import perf_counter

        tm = TELEMETRY
        record = tm.enabled
        t0 = perf_counter()
        shards = min(shards, pair_arr.shape[0])
        # Source-sharding: all traffic from one source lands in one
        # worker (stable argsort keeps row order within a shard).
        shard_of = pair_arr[:, 0] % shards
        order = np.argsort(shard_of, kind="stable")
        bounds = np.searchsorted(shard_of[order], np.arange(shards + 1))
        chunks = [
            pair_arr[order[bounds[i] : bounds[i + 1]]] for i in range(shards)
        ]
        with cf.ProcessPoolExecutor(max_workers=shards) as pool:
            futures = [
                pool.submit(
                    _route_shard, str(self.path), chunk, ttl, record, self.kernel
                )
                for chunk in chunks
                if chunk.shape[0]
            ]
            results = [f.result() for f in futures]
        parts = [BatchResult(*res[:8]) for res in results]
        if record:
            for res in results:
                tm.observe("serve.shard_seconds", float(res[8]))
                tm.merge(res[9])
            elapsed = perf_counter() - t0
            if elapsed > 0:
                tm.gauge("serve.pairs_per_second", pair_arr.shape[0] / elapsed)
        kept = np.concatenate(
            [order[bounds[i] : bounds[i + 1]] for i in range(shards)
             if bounds[i + 1] > bounds[i]]
        )
        return _shard_results(parts, kept, pair_arr.shape[0])
