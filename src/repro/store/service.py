"""The serving front door: answer traffic matrices from a stored scheme.

:class:`RouteService` opens one ``.tzs`` container (zero-copy, see
:mod:`repro.store.format`) and serves whole traffic matrices through
the vectorized :class:`~repro.sim.engine.batch.BatchRouter`.  Because
the compiled arrays live in a shared file mapping, *any number of
processes can serve the same scheme against the same physical pages* —
the OS page cache is the only copy in the machine.

``route(pairs, shards=N)`` exploits exactly that: the traffic matrix is
partitioned by source vertex across ``N`` worker processes, each worker
memory-maps the same store file, routes its shard, and the per-pair
results are scattered back into the caller's row order.  Rows are
routed independently by construction, so the sharded result is
bit-for-bit the single-process result (tested) — sharding changes wall
time, never answers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import RoutingError
from ..sim.engine.batch import BatchResult, BatchRouter


def _shard_results(parts, order, count):
    """Scatter per-shard column arrays back into input-row order."""
    out = {}
    for name in ("source", "dest", "delivered", "weight", "hops", "tree",
                 "max_header_bits", "failure_code"):
        column = np.concatenate([getattr(p, name) for p in parts])
        scattered = np.empty(count, dtype=column.dtype)
        scattered[order] = column
        out[name] = scattered
    return BatchResult(**out)


def _route_shard(path: str, pairs: np.ndarray, ttl: Optional[int]):
    """Worker entry point: mmap the store file and route one shard."""
    service = RouteService(path)
    result = service.route(pairs, ttl=ttl)
    return (
        result.source,
        result.dest,
        result.delivered,
        result.weight,
        result.hops,
        result.tree,
        result.max_header_bits,
        result.failure_code,
    )


class RouteService:
    """Serve traffic matrices from one stored scheme (see module doc)."""

    def __init__(self, path: Union[str, Path], *, mmap: bool = True) -> None:
        """Open the container at ``path`` (zero-copy mmap by default)."""
        from .store import SchemeStore

        self.path = Path(path)
        stored = SchemeStore(self.path.parent).load(self.path, mmap=mmap)
        self.meta = stored.meta
        self.compiled = stored.compiled
        self._router = BatchRouter.from_compiled(stored.compiled)

    @property
    def n(self) -> int:
        """Vertex count of the served scheme."""
        return self.compiled.n

    @property
    def k(self) -> int:
        """Hierarchy depth of the served scheme."""
        return self.compiled.k

    def route(
        self,
        pairs: np.ndarray,
        *,
        ttl: Optional[int] = None,
        shards: int = 1,
    ) -> BatchResult:
        """Route every ``(s, t)`` row of ``pairs``.

        ``shards > 1`` source-shards the matrix across that many worker
        processes, each memory-mapping this service's store file; the
        result is bit-identical to ``shards=1`` in the input row order.
        """
        pair_arr = np.asarray(pairs, dtype=np.int64)
        if pair_arr.size == 0:
            pair_arr = pair_arr.reshape(0, 2)
        if pair_arr.ndim != 2 or pair_arr.shape[1] != 2:
            raise RoutingError("pairs must be an (m, 2) integer array")
        if shards <= 1 or pair_arr.shape[0] < 2:
            return self._router.route_pairs(pair_arr, ttl=ttl)

        import concurrent.futures as cf

        shards = min(int(shards), pair_arr.shape[0])
        # Source-sharding: all traffic from one source lands in one
        # worker (stable argsort keeps row order within a shard).
        shard_of = pair_arr[:, 0] % shards
        order = np.argsort(shard_of, kind="stable")
        bounds = np.searchsorted(shard_of[order], np.arange(shards + 1))
        chunks = [
            pair_arr[order[bounds[i] : bounds[i + 1]]] for i in range(shards)
        ]
        with cf.ProcessPoolExecutor(max_workers=shards) as pool:
            futures = [
                pool.submit(_route_shard, str(self.path), chunk, ttl)
                for chunk in chunks
                if chunk.shape[0]
            ]
            parts = [BatchResult(*f.result()) for f in futures]
        kept = np.concatenate(
            [order[bounds[i] : bounds[i + 1]] for i in range(shards)
             if bounds[i + 1] > bounds[i]]
        )
        return _shard_results(parts, kept, pair_arr.shape[0])
