"""The serving front door: answer traffic matrices from a stored scheme.

:class:`RouteService` opens one ``.tzs`` container (zero-copy, see
:mod:`repro.store.format`) and serves whole traffic matrices through
the vectorized :class:`~repro.sim.engine.batch.BatchRouter`.  Because
the compiled arrays live in a shared file mapping, *any number of
processes can serve the same scheme against the same physical pages* —
the OS page cache is the only copy in the machine.

``route(pairs, shards=N)`` exploits exactly that: the traffic matrix is
partitioned by source vertex across ``N`` worker processes, each worker
memory-maps the same store file, routes its shard, and the per-pair
results are scattered back into the caller's row order.  Rows are
routed independently by construction, so the sharded result is
bit-for-bit the single-process result (tested) — sharding changes wall
time, never answers.

Hot swap
--------
Point the service at a lineage's ``.current`` pointer file (see
:meth:`SchemeStore.publish_patch <repro.store.store.SchemeStore.publish_patch>`)
instead of a container and it follows version publishes **between
batches**: every :meth:`route` call starts by resolving the pointer
under a lock, re-mmapping the new container if it moved, and then
routes the whole batch on that one mapping.  An in-flight batch keeps
routing on the mapping it started with (the old memory map stays alive
exactly as long as a batch references it — draining is just reference
lifetime), so every batch is answered by exactly one scheme version:
none are dropped, none are mixed.  Sharded workers receive the already
resolved container path, never the pointer, for the same reason.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import RoutingError
from ..obs import TELEMETRY
from ..sim.engine.batch import BatchResult, BatchRouter


def _shard_results(parts, order, count):
    """Scatter per-shard column arrays back into input-row order."""
    out = {}
    for name in ("source", "dest", "delivered", "weight", "hops", "tree",
                 "max_header_bits", "failure_code"):
        column = np.concatenate([getattr(p, name) for p in parts])
        scattered = np.empty(count, dtype=column.dtype)
        scattered[order] = column
        out[name] = scattered
    return BatchResult(**out)


def _route_shard(
    path: str,
    pairs: np.ndarray,
    ttl: Optional[int],
    record: bool = False,
    kernel: str = "auto",
):
    """Worker entry point: mmap the store file and route one shard.

    ``path`` is always a resolved container path — the parent pins the
    version for the whole batch before fanning out, so shards of one
    batch can never map different versions.

    With ``record=True`` the worker resets its (possibly fork-inherited)
    telemetry registry, enables it for the duration of the shard, and
    ships the metric snapshot home alongside the result columns and the
    shard's wall time — the parent merges them (spans stay local).
    """
    from time import perf_counter

    if record:
        TELEMETRY.reset()
        TELEMETRY.enable()
    t0 = perf_counter()
    service = RouteService(path, kernel=kernel)
    # Route through the router directly: the parent already counted the
    # serve.* metrics for the whole request, so the merged worker
    # snapshots must carry only the route.*-level ones.
    result = service._router.route_pairs(pairs, ttl=ttl)
    elapsed = perf_counter() - t0
    snapshot = TELEMETRY.snapshot() if record else None
    return (
        result.source,
        result.dest,
        result.delivered,
        result.weight,
        result.hops,
        result.tree,
        result.max_header_bits,
        result.failure_code,
        elapsed,
        snapshot,
    )


class RouteService:
    """Serve traffic matrices from one stored scheme (see module doc)."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        mmap: bool = True,
        kernel: str = "auto",
        follow: Optional[bool] = None,
    ) -> None:
        """Open the container at ``path`` (zero-copy mmap by default).

        ``path`` may be a ``.tzs`` container or a lineage's ``.current``
        pointer file; the latter (or ``follow=True``) puts the service
        in hot-swap mode — see the module docstring.  ``kernel`` selects
        the hop-loop backend of the serving router
        (``"numpy"``/``"native"``/``"auto"``, see :mod:`repro.kernels`);
        answers are bit-identical either way.
        """
        from .store import POINTER_SUFFIX

        self.path = Path(path)
        if follow is None:
            follow = self.path.name.endswith(POINTER_SUFFIX)
        self.follow = bool(follow)
        self.mmap = bool(mmap)
        self.kernel = kernel
        self.swap_count = 0
        self._swap_lock = threading.Lock()
        self._resolved: Optional[Path] = None
        self._open_current()

    def _resolve(self) -> Path:
        """The container path to serve right now (follows the pointer)."""
        if not self.follow:
            return self.path
        try:
            key = self.path.read_text().strip()
        except OSError as exc:
            raise RoutingError(
                f"cannot resolve current version from {self.path}: {exc}"
            ) from exc
        if not key:
            raise RoutingError(f"version pointer {self.path} is empty")
        from .store import STORE_SUFFIX

        return self.path.parent / f"{key}{STORE_SUFFIX}"

    def _open(self, resolved: Path) -> None:
        """Map ``resolved`` and install its router as the serving state."""
        from .store import SchemeStore

        with TELEMETRY.span("serve.open", mmap=self.mmap):
            stored = SchemeStore(resolved.parent).load(resolved, mmap=self.mmap)
            self.meta = stored.meta
            self.compiled = stored.compiled
            self._router = BatchRouter.from_compiled(stored.compiled, kernel=self.kernel)
            self._resolved = resolved

    #: Pointer re-resolve attempts before an open gives up (each retry
    #: needs a fresh publish+gc to land in the race window, so two would
    #: already be extraordinary).
    _OPEN_RETRIES = 8

    def _open_current(self) -> bool:
        """Resolve the pointer and map the version it names; True on a move.

        A store ``gc()`` racing a ``publish_patch`` can unlink the
        version this service just resolved *between* the pointer read
        and the mmap — the resolved container is then already gone, but
        the lineage is fine: the pointer moved on to a live version.
        So a vanished container is retried through a fresh pointer
        resolve instead of surfacing as an error; only a container that
        still exists and fails to open (real corruption) propagates.
        """
        from ..errors import EncodingError

        last_exc = None
        for _ in range(self._OPEN_RETRIES):
            resolved = self._resolve()
            if resolved == self._resolved:
                return False
            try:
                self._open(resolved)
                return True
            except (FileNotFoundError, EncodingError) as exc:
                if not self.follow or resolved.exists():
                    raise  # genuine damage, not the gc race
                TELEMETRY.count("serve.reload_retries")
                last_exc = exc
        raise RoutingError(
            f"current version of {self.path} kept vanishing after "
            f"{self._OPEN_RETRIES} resolve attempts"
        ) from last_exc

    def _serving_state(self):
        """The (router, container path) for one batch.

        In hot-swap mode this is the swap point: the pointer is resolved
        under the lock and a moved pointer re-mmaps before the batch
        starts (retrying through the pointer if a gc unlinked the
        resolved version mid-open, see :meth:`_open_current`).  The
        returned references pin the chosen version for the caller's
        whole batch regardless of later swaps.
        """
        if not self.follow:
            return self._router, self._resolved
        with self._swap_lock:
            if self._open_current():
                self.swap_count += 1
                TELEMETRY.count("serve.swaps")
            return self._router, self._resolved

    def reload(self) -> bool:
        """Force a pointer re-resolve now; True if a swap happened."""
        before = self.swap_count
        self._serving_state()
        return self.swap_count != before

    @property
    def n(self) -> int:
        """Vertex count of the served scheme."""
        return self.compiled.n

    @property
    def k(self) -> int:
        """Hierarchy depth of the served scheme."""
        return self.compiled.k

    @property
    def version(self) -> Optional[int]:
        """Version number of the served container (None pre-versioning)."""
        v = self.meta.get("version")
        return None if v is None else int(v)

    def route(
        self,
        pairs: np.ndarray,
        *,
        ttl: Optional[int] = None,
        shards: int = 1,
    ) -> BatchResult:
        """Route every ``(s, t)`` row of ``pairs``.

        ``shards > 1`` source-shards the matrix across that many worker
        processes, each memory-mapping this service's store file; the
        result is bit-identical to ``shards=1`` in the input row order.
        In hot-swap mode the serving version is pinned once per call, so
        the whole matrix is answered by exactly one scheme version.
        """
        pair_arr = np.asarray(pairs, dtype=np.int64)
        if pair_arr.size == 0:
            pair_arr = pair_arr.reshape(0, 2)
        if pair_arr.ndim != 2 or pair_arr.shape[1] != 2:
            raise RoutingError("pairs must be an (m, 2) integer array")
        router, resolved = self._serving_state()
        tm = TELEMETRY
        with tm.span(
            "serve.route", pairs=int(pair_arr.shape[0]), shards=int(max(shards, 1))
        ):
            if tm.enabled:
                tm.count("serve.requests")
                tm.count("serve.pairs", int(pair_arr.shape[0]))
            if shards <= 1 or pair_arr.shape[0] < 2:
                if tm.enabled:
                    from time import perf_counter

                    t0 = perf_counter()
                    result = router.route_pairs(pair_arr, ttl=ttl)
                    elapsed = perf_counter() - t0
                    tm.observe("serve.shard_seconds", elapsed)
                    if elapsed > 0:
                        tm.gauge(
                            "serve.pairs_per_second", pair_arr.shape[0] / elapsed
                        )
                    return result
                return router.route_pairs(pair_arr, ttl=ttl)
            return self._route_sharded(pair_arr, ttl, int(shards), resolved)

    def _route_sharded(
        self,
        pair_arr: np.ndarray,
        ttl: Optional[int],
        shards: int,
        resolved: Optional[Path] = None,
    ) -> BatchResult:
        """Fan one traffic matrix out across worker processes."""
        import concurrent.futures as cf
        from time import perf_counter

        if resolved is None:
            resolved = self._resolved
        tm = TELEMETRY
        record = tm.enabled
        t0 = perf_counter()
        shards = min(shards, pair_arr.shape[0])
        # Source-sharding: all traffic from one source lands in one
        # worker (stable argsort keeps row order within a shard).
        shard_of = pair_arr[:, 0] % shards
        order = np.argsort(shard_of, kind="stable")
        bounds = np.searchsorted(shard_of[order], np.arange(shards + 1))
        chunks = [
            pair_arr[order[bounds[i] : bounds[i + 1]]] for i in range(shards)
        ]
        with cf.ProcessPoolExecutor(max_workers=shards) as pool:
            futures = [
                pool.submit(
                    _route_shard, str(resolved), chunk, ttl, record, self.kernel
                )
                for chunk in chunks
                if chunk.shape[0]
            ]
            results = [f.result() for f in futures]
        parts = [BatchResult(*res[:8]) for res in results]
        if record:
            for res in results:
                tm.observe("serve.shard_seconds", float(res[8]))
                tm.merge(res[9])
            elapsed = perf_counter() - t0
            if elapsed > 0:
                tm.gauge("serve.pairs_per_second", pair_arr.shape[0] / elapsed)
        kept = np.concatenate(
            [order[bounds[i] : bounds[i + 1]] for i in range(shards)
             if bounds[i + 1] > bounds[i]]
        )
        return _shard_results(parts, kept, pair_arr.shape[0])
