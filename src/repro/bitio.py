"""Bit-level encoders and decoders.

The complexity measure of Thorup & Zwick (SPAA 2001) is the number of
*bits* in routing tables, labels, and headers.  This module provides the
codecs used to materialize every label and table in the package as an
actual bit string, so that reported sizes are measured rather than
estimated:

* :class:`BitWriter` / :class:`BitReader` — append-only bit buffer and its
  cursor-based reader.
* unary, fixed-width binary, Elias-gamma and Elias-delta integer codes.
* :func:`encode_port_sequence` — the prefix-free code for designer-port
  sequences used by the TZ tree-routing labels (§2 of the paper): a
  sequence of ports :math:`p_1, p_2, \\dots` along light edges satisfies
  :math:`\\prod_j p_j \\le n`, so Elias-gamma coding yields
  :math:`\\log_2 n + O(\\text{light-depth})`-bit labels.

All codes here are self-delimiting (prefix-free) so concatenation needs no
explicit separators, matching the paper's accounting.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .errors import EncodingError


def bit_length(x: int) -> int:
    """Number of bits in the binary representation of ``x`` (``x >= 0``);
    by convention ``bit_length(0) == 1`` (we store a single 0 bit)."""
    if x < 0:
        raise EncodingError(f"cannot measure negative value {x}")
    return max(1, int(x).bit_length())


def code_width(count: int) -> int:
    """Fixed field width for values drawn from ``range(count)``:
    ``ceil(log2(count))`` bits.

    A one-value domain (``count == 1``) genuinely needs **0** bits — the
    decoder knows the value is 0 without reading anything.  Clamping the
    width to 1 here (as this codebase once did) writes a spurious bit for
    every degenerate field: vertex ids on a single-vertex graph, DFS
    numbers in single-vertex cluster trees.
    """
    if count < 1:
        raise EncodingError(f"field domain must be non-empty, got {count}")
    return int(count - 1).bit_length()


class BitWriter:
    """Append-only bit buffer.

    Bits are stored most-significant-first within the logical stream.  The
    writer tracks its exact length in bits; :meth:`getvalue` returns a
    ``bytes`` object padded with zero bits at the end.
    """

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: List[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def n_bits(self) -> int:
        """Exact number of bits written so far."""
        return len(self._bits)

    def write_bit(self, b: int) -> "BitWriter":
        if b not in (0, 1):
            raise EncodingError(f"bit must be 0 or 1, got {b!r}")
        self._bits.append(b)
        return self

    def write_bits(self, bits: Iterable[int]) -> "BitWriter":
        for b in bits:
            self.write_bit(b)
        return self

    def write_uint(self, value: int, width: int) -> "BitWriter":
        """Write ``value`` as a fixed ``width``-bit big-endian integer."""
        if value < 0:
            raise EncodingError(f"cannot encode negative value {value}")
        if width < 0:
            raise EncodingError(f"width must be non-negative, got {width}")
        if value >> width:
            raise EncodingError(f"value {value} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self._bits.append((value >> i) & 1)
        return self

    def write_unary(self, value: int) -> "BitWriter":
        """Write ``value`` zeros followed by a one (prefix-free)."""
        if value < 0:
            raise EncodingError(f"cannot unary-encode negative value {value}")
        self._bits.extend([0] * value)
        self._bits.append(1)
        return self

    def write_gamma(self, value: int) -> "BitWriter":
        """Elias-gamma code for ``value >= 1``: ``2*floor(log2 v) + 1`` bits."""
        if value < 1:
            raise EncodingError(f"Elias gamma requires value >= 1, got {value}")
        n = value.bit_length() - 1
        self.write_unary(n)
        self.write_uint(value - (1 << n), n)
        return self

    def write_gamma0(self, value: int) -> "BitWriter":
        """Elias-gamma shifted to accept ``value >= 0``."""
        self.write_gamma(value + 1)
        return self

    def write_delta(self, value: int) -> "BitWriter":
        """Elias-delta code for ``value >= 1``:
        ``log2 v + 2*log2 log2 v + O(1)`` bits — asymptotically tighter
        than gamma for large values."""
        if value < 1:
            raise EncodingError(f"Elias delta requires value >= 1, got {value}")
        n = value.bit_length()
        self.write_gamma(n)
        self.write_uint(value - (1 << (n - 1)), n - 1)
        return self

    def write_delta0(self, value: int) -> "BitWriter":
        """Elias-delta shifted to accept ``value >= 0``."""
        self.write_delta(value + 1)
        return self

    def extend(self, other: "BitWriter") -> "BitWriter":
        self._bits.extend(other._bits)
        return self

    def getvalue(self) -> bytes:
        out = bytearray((len(self._bits) + 7) // 8)
        for i, b in enumerate(self._bits):
            if b:
                out[i // 8] |= 0x80 >> (i % 8)
        return bytes(out)

    def bits(self) -> Tuple[int, ...]:
        return tuple(self._bits)


class BitReader:
    """Cursor-based reader over bits produced by :class:`BitWriter`."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, source) -> None:
        if isinstance(source, BitWriter):
            self._bits: Sequence[int] = source.bits()
        elif isinstance(source, (bytes, bytearray)):
            bits: List[int] = []
            for byte in source:
                for i in range(7, -1, -1):
                    bits.append((byte >> i) & 1)
            self._bits = bits
        else:
            self._bits = list(source)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise EncodingError("bit stream exhausted")
        b = self._bits[self._pos]
        self._pos += 1
        return b

    def read_uint(self, width: int) -> int:
        if width < 0:
            raise EncodingError(f"width must be non-negative, got {width}")
        if self._pos + width > len(self._bits):
            raise EncodingError("bit stream exhausted")
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    def read_gamma(self) -> int:
        n = self.read_unary()
        return (1 << n) + self.read_uint(n)

    def read_gamma0(self) -> int:
        return self.read_gamma() - 1

    def read_delta(self) -> int:
        n = self.read_gamma()
        return (1 << (n - 1)) + self.read_uint(n - 1)

    def read_delta0(self) -> int:
        return self.read_delta() - 1


def gamma_cost(value: int) -> int:
    """Bit cost of Elias-gamma encoding ``value >= 1``."""
    if value < 1:
        raise EncodingError(f"Elias gamma requires value >= 1, got {value}")
    return 2 * (value.bit_length() - 1) + 1


def delta_cost(value: int) -> int:
    """Bit cost of Elias-delta encoding ``value >= 1``."""
    if value < 1:
        raise EncodingError(f"Elias delta requires value >= 1, got {value}")
    n = value.bit_length()
    return gamma_cost(n) + n - 1


def uint_cost(value: int, width: int) -> int:
    """Bit cost of a fixed-width field (validating that it fits)."""
    if value >> width:
        raise EncodingError(f"value {value} does not fit in {width} bits")
    return width


def encode_port_sequence(ports: Sequence[int]) -> BitWriter:
    """Encode a designer-port sequence prefix-free.

    The TZ tree labels (§2) record, for each *light* edge on the path from
    the root to a vertex, the designer port taken.  With designer ports
    assigned in order of decreasing subtree size, port :math:`p` at a node
    of subtree size :math:`s` leads into a subtree of size at most
    :math:`s/p`; hence :math:`\\prod p_j \\le n` along any root path and the
    gamma-coded sequence costs at most :math:`2\\log_2 n + \\#\\text{lights}`
    bits.  The count is delta-coded first so the sequence self-delimits.
    """
    w = BitWriter()
    w.write_delta0(len(ports))
    for p in ports:
        if p < 1:
            raise EncodingError(f"ports are 1-based; got {p}")
        w.write_gamma(p)
    return w


def decode_port_sequence(reader: BitReader) -> List[int]:
    """Inverse of :func:`encode_port_sequence`."""
    count = reader.read_delta0()
    return [reader.read_gamma() for _ in range(count)]


def port_sequence_cost(ports: Sequence[int]) -> int:
    """Bit cost of :func:`encode_port_sequence` without materializing it."""
    return delta_cost(len(ports) + 1) + sum(gamma_cost(p) for p in ports)
