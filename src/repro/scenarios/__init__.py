"""Scenario lab: declarative failure/churn sweeps through the full stack.

The lab answers "what breaks, and how badly, when the network churns
out from under a static Thorup–Zwick scheme" — at the scale the
vectorized stack makes routine.  A sweep is declared as data
(:class:`ScenarioSpec`: graph family × k × workload × failure model ×
trial count), expanded from a grid (:func:`expand_grid`), executed
end-to-end (:func:`run_scenario` — scheme from the
:class:`~repro.store.SchemeStore` when one is given, all failure
trials advanced simultaneously by the batch engine), and reported as
JSON + markdown (:mod:`repro.analysis.scenario_report`).  CLI:
``repro scenarios``.
"""

from .churn import ChurnEpoch, ChurnResult, random_delta, run_churn
from .lab import ScenarioResult, default_failure_params, run_scenario, run_scenarios
from .spec import ScenarioSpec, expand_grid, normalize_params

__all__ = [
    "ChurnEpoch",
    "ChurnResult",
    "ScenarioSpec",
    "ScenarioResult",
    "expand_grid",
    "normalize_params",
    "default_failure_params",
    "random_delta",
    "run_churn",
    "run_scenario",
    "run_scenarios",
]
