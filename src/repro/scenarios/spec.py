"""Declarative scenario specs: what a resilience sweep is, as data.

A :class:`ScenarioSpec` names everything one failure sweep depends on —
graph family and size, hierarchy depth ``k``, traffic workload, failure
model and its parameters, trial count, seed, engine, kernel — so a whole
evaluation campaign is a *list of values*, serializable to JSON,
expandable from a grid, and rerunnable bit-for-bit.  The lab
(:mod:`repro.scenarios.lab`) turns each spec into a
:class:`ScenarioResult`; the reporting layer
(:mod:`repro.analysis.scenario_report`) turns result lists into JSON
and markdown.

>>> specs = expand_grid(graphs=("gnp", "grid"), ks=(2, 3), n=128)
>>> len(specs)
4
>>> specs[0].name
'gnp-n128-k2-uniform-iid-edges-x32'
>>> specs[0] == ScenarioSpec.from_dict(specs[0].to_dict())
True
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative resilience scenario (see module docstring).

    ``failure_params`` is stored as a sorted ``(key, value)`` tuple so
    specs stay hashable/frozen; read it through :attr:`params`.  An
    empty tuple means "use the lab's per-model defaults".
    """

    graph: str = "gnp"
    n: int = 256
    k: int = 2
    handshake: bool = False
    workload: str = "uniform"
    pairs: int = 1000
    failure_model: str = "iid-edges"
    failure_params: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)
    trials: int = 32
    seed: int = 0
    engine: str = "auto"
    kernel: str = "auto"

    @property
    def params(self) -> Dict[str, float]:
        """``failure_params`` as a plain dict."""
        return dict(self.failure_params)

    @property
    def name(self) -> str:
        """A stable human-readable slug identifying the scenario."""
        hs = "-hs" if self.handshake else ""
        return (
            f"{self.graph}-n{self.n}-k{self.k}{hs}-{self.workload}-"
            f"{self.failure_model}-x{self.trials}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict form (inverse of :meth:`from_dict`)."""
        d = asdict(self)
        d["failure_params"] = dict(self.failure_params)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        data = dict(d)
        params = data.pop("failure_params", {}) or {}
        if not isinstance(params, Mapping):
            params = dict(params)  # accept (key, value) pair sequences too
        data["failure_params"] = normalize_params(params)
        return cls(**data)


def normalize_params(params: Optional[Mapping[str, float]]) -> Tuple:
    """Canonicalize a failure-parameter mapping into a sorted tuple."""
    if not params:
        return ()
    return tuple(sorted((str(k), v) for k, v in params.items()))


def expand_grid(
    *,
    graphs: Sequence[str] = ("gnp",),
    ks: Sequence[int] = (2,),
    workloads: Sequence[str] = ("uniform",),
    failure_models: Sequence[str] = ("iid-edges",),
    n: int = 256,
    pairs: int = 1000,
    trials: int = 32,
    seed: int = 0,
    handshake: bool = False,
    engine: str = "auto",
    kernel: str = "auto",
    failure_params: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> List[ScenarioSpec]:
    """The cross product ``graphs × ks × workloads × failure_models``.

    ``failure_params`` optionally maps a failure-model name to its
    parameter dict (models not listed use the lab defaults).  Order is
    the deterministic row-major product order, so reports line up run
    to run.
    """
    per_model = failure_params or {}
    return [
        ScenarioSpec(
            graph=g,
            n=n,
            k=k,
            handshake=handshake,
            workload=w,
            pairs=pairs,
            failure_model=fm,
            failure_params=normalize_params(per_model.get(fm)),
            trials=trials,
            seed=seed,
            engine=engine,
            kernel=kernel,
        )
        for g, k, w, fm in product(graphs, ks, workloads, failure_models)
    ]
