"""Churn sweeps: maintain one scheme while the graph mutates under it.

Where :mod:`repro.scenarios.lab` measures a *static* scheme against
failures at route time, this module measures the **maintenance loop**:
every epoch a random :class:`~repro.graphs.GraphDelta` lands on the
graph and the runner must produce the scheme of the mutated graph —
either by :func:`~repro.core.build.patch.patch_arrays` (rebuild only
the dirty clusters, splice the rest) or by a full rebuild — before the
next traffic batch arrives.  Each epoch records both sides of the
trade: the update cost (wall time, dirty-cluster count, fraction of
entries actually rebuilt) and the routing quality of the refreshed
scheme (delivery, stretch against exact distances on the *mutated*
graph).

With a :class:`~repro.store.SchemeStore` the loop also exercises the
full versioned-serving path: epoch 0 publishes the root version,
every later epoch publishes a patch into the same lineage, and traffic
is answered by a :class:`~repro.store.RouteService` following the
lineage's ``.current`` pointer — so each epoch's batch is served off a
hot-swapped mmap, exactly as a long-running server would see it.

Determinism contract: same as the lab — everything derives from
``seed`` via :func:`repro.rng.derive` with fixed tags (``"churn"``
plus the epoch index), so a churn run is exactly re-derivable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.build import build_arrays, patch_arrays
from ..errors import GraphError, PreprocessingError
from ..graphs.delta import GraphDelta, apply_delta
from ..graphs.graph import Graph
from ..graphs.ports import assign_ports
from ..obs import TELEMETRY
from ..rng import derive
from ..sim.runner import _stretch_values, pair_true_distances
from ..sim.stats import stretch_stats
from ..sim.workloads import make_workload

__all__ = ["ChurnEpoch", "ChurnResult", "random_delta", "run_churn"]

POLICIES = ("auto", "patch", "rebuild")


def random_delta(
    graph: Graph,
    rng: np.random.Generator,
    *,
    weight_updates: int = 2,
    edge_adds: int = 1,
    edge_drops: int = 1,
    node_drops: int = 0,
    max_weight: int = 16,
    retries: int = 16,
) -> GraphDelta:
    """Draw a random connectivity-preserving delta for ``graph``.

    Candidate mutations are sampled (integer weights keep the result on
    the float64-exact contract the patch builder requires) and checked
    by actually applying them; a candidate that disconnects the graph
    is rejected and redrawn with the destructive parts halved, so the
    function always returns a delta whose application leaves the graph
    connected.  Raises :class:`~repro.errors.GraphError` only if even
    the pure-additive fallback fails, which cannot happen on a
    connected input.
    """
    drops_e, drops_n = int(edge_drops), int(node_drops)
    for _ in range(max(int(retries), 1)):
        delta = _draw_candidate(
            graph, rng, int(weight_updates), int(edge_adds), drops_e,
            drops_n, int(max_weight),
        )
        try:
            mutated, _ = apply_delta(graph, delta)
        except GraphError:
            continue
        if mutated.is_connected():
            return delta
        # Destructive candidates are the only way to disconnect; decay
        # them toward the always-safe additive-only delta.
        drops_e //= 2
        drops_n //= 2
    raise GraphError(
        "random_delta could not find a connectivity-preserving delta "
        f"after {retries} attempts"
    )


def _draw_candidate(
    graph: Graph,
    rng: np.random.Generator,
    weight_updates: int,
    edge_adds: int,
    edge_drops: int,
    node_drops: int,
    max_weight: int,
) -> GraphDelta:
    """One unchecked candidate delta (may disconnect; caller verifies)."""
    m, n = graph.m, graph.n
    used = set()

    w_upd = []
    for eid in _sample(rng, m, weight_updates):
        u, v = (int(x) for x in graph.edges[eid])
        used.add((u, v))
        old = float(graph.edge_weights[eid])
        w = float(rng.integers(1, max_weight + 1))
        if w == old:  # force an actual change
            w = old + 1.0
        w_upd.append((u, v, w))

    dropped = []
    for eid in _sample(rng, m, edge_drops):
        u, v = (int(x) for x in graph.edges[eid])
        if (u, v) in used:
            continue
        used.add((u, v))
        dropped.append((u, v))

    drop_nodes = tuple(int(x) for x in _sample(rng, n, node_drops))

    existing = {tuple(int(x) for x in e) for e in graph.edges}
    adds = []
    for _ in range(edge_adds * 4):
        if len(adds) >= edge_adds:
            break
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in existing or key in used:
            continue
        used.add(key)
        adds.append((*key, float(rng.integers(1, max_weight + 1))))

    return GraphDelta(
        weight_updates=tuple(w_upd),
        add_edges=tuple(adds),
        drop_edges=tuple(dropped),
        drop_nodes=drop_nodes,
    )


def _sample(rng: np.random.Generator, limit: int, count: int) -> np.ndarray:
    count = min(int(count), int(limit))
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(limit, size=count, replace=False).astype(np.int64)


@dataclass
class ChurnEpoch:
    """Measured outcome of one churn epoch (update + routing)."""

    epoch: int
    classes: List[str]
    method: str  #: ``"patch"`` or ``"rebuild"`` — what actually ran
    update_seconds: float
    n: int
    m: int
    dirty_clusters: int = 0
    clean_clusters: int = 0
    entries_rebuilt: int = 0
    entries_reused: int = 0
    delivery: float = 1.0
    mean_stretch: float = 1.0
    max_stretch: float = 1.0
    key: Optional[str] = None
    version: Optional[int] = None

    @property
    def reuse_fraction(self) -> float:
        """Fraction of scheme entries carried over unrebuilt."""
        total = self.entries_rebuilt + self.entries_reused
        return self.entries_reused / total if total else 0.0

    def row(self) -> Dict[str, object]:
        """One report-table row."""
        return {
            "epoch": self.epoch,
            "classes": "+".join(self.classes) if self.classes else "none",
            "method": self.method,
            "n": self.n,
            "m": self.m,
            "update_s": round(self.update_seconds, 4),
            "dirty": self.dirty_clusters,
            "reused": round(self.reuse_fraction, 4),
            "delivery": round(self.delivery, 4),
            "stretch_mean": round(self.mean_stretch, 4),
            "stretch_max": round(self.max_stretch, 4),
            "version": self.version,
        }

    def to_dict(self) -> Dict[str, object]:
        out = dict(self.row())
        out.update(
            classes=list(self.classes),
            entries_rebuilt=self.entries_rebuilt,
            entries_reused=self.entries_reused,
            clean_clusters=self.clean_clusters,
            key=self.key,
        )
        return out


@dataclass
class ChurnResult:
    """Full churn-run report: setup plus the per-epoch trajectory."""

    graph: str
    n0: int
    m0: int
    k: int
    seed: int
    policy: str
    pairs: int
    epochs: List[ChurnEpoch] = field(default_factory=list)
    build_seconds: float = 0.0
    lineage: Optional[str] = None

    @property
    def patched_epochs(self) -> int:
        return sum(1 for e in self.epochs if e.method == "patch")

    @property
    def mean_update_seconds(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.update_seconds for e in self.epochs]))

    def rows(self) -> List[Dict[str, object]]:
        return [e.row() for e in self.epochs]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready report (kind ``tz-churn-report``)."""
        return {
            "kind": "tz-churn-report",
            "graph": self.graph,
            "n0": self.n0,
            "m0": self.m0,
            "k": self.k,
            "seed": self.seed,
            "policy": self.policy,
            "pairs": self.pairs,
            "build_seconds": round(self.build_seconds, 4),
            "patched_epochs": self.patched_epochs,
            "mean_update_seconds": round(self.mean_update_seconds, 6),
            "lineage": self.lineage,
            "epochs": [e.to_dict() for e in self.epochs],
        }


def run_churn(
    graph: Graph,
    *,
    k: int = 2,
    seed: int = 0,
    epochs: int = 4,
    pairs: int = 256,
    policy: str = "auto",
    store=None,
    kernel: str = "auto",
    workload: str = "uniform",
    graph_label: str = "graph",
    max_versions: Optional[int] = None,
    delta_params: Optional[Dict[str, int]] = None,
) -> ChurnResult:
    """Run ``epochs`` rounds of mutate → update scheme → route traffic.

    ``policy`` picks the maintenance strategy per epoch: ``"patch"``
    always patches (a delta the patch builder rejects raises),
    ``"rebuild"`` always rebuilds from scratch, ``"auto"`` tries the
    patch and falls back to a full rebuild when it raises
    :class:`~repro.errors.PreprocessingError`.  With ``store`` (a
    :class:`~repro.store.SchemeStore`) every version is published into
    one lineage and traffic is served through a hot-swapping
    :class:`~repro.store.RouteService` on the lineage pointer;
    without one, routing compiles the fresh arrays in memory.
    """
    if policy not in POLICIES:
        raise PreprocessingError(
            f"unknown churn policy {policy!r}; expected one of {POLICIES}"
        )
    graph = graph.largest_component()
    ported = assign_ports(graph, "sorted")

    t0 = time.perf_counter()
    arrays = build_arrays(
        graph, k, ported=ported, rng=derive(seed, "churn", "hierarchy"),
        kernel=kernel,
    )
    build_seconds = time.perf_counter() - t0

    result = ChurnResult(
        graph=graph_label, n0=graph.n, m0=graph.m, k=k, seed=int(seed),
        policy=policy, pairs=int(pairs), build_seconds=build_seconds,
    )

    service = None
    parent_key = None
    if store is not None:
        parent_key = store.publish(graph, ported, arrays, seed=seed)
        result.lineage = parent_key
        from ..store import RouteService

        service = RouteService(store.pointer_path(parent_key), kernel=kernel)

    params = dict(delta_params or {})
    bound = float(4 * k - 5) if k > 1 else 1.0
    for epoch in range(int(epochs)):
        with TELEMETRY.span("churn.epoch", epoch=epoch, policy=policy):
            delta = random_delta(
                graph, derive(seed, "churn", "delta", epoch), **params
            )
            t0 = time.perf_counter()
            method, graph, ported, arrays, stats = _update(
                arrays, graph, delta, ported, policy, kernel,
                derive(seed, "churn", "rebuild", epoch),
            )
            update_seconds = time.perf_counter() - t0

            key = version = None
            if store is not None:
                key = store.publish_patch(
                    parent_key, graph, ported, arrays, delta=delta,
                    seed=seed, builder=method, max_versions=max_versions,
                )
                parent_key = key
                service.reload()
                version = service.version
                router = service
            else:
                from ..sim.engine.batch import BatchRouter
                from ..sim.engine.compile import compile_from_arrays

                router = BatchRouter.from_compiled(
                    compile_from_arrays(arrays, ported), kernel=kernel
                )

            pair_arr = make_workload(
                graph, workload, pairs, derive(seed, "churn", "pairs", epoch)
            )
            batch = (
                router.route(pair_arr)
                if store is not None
                else router.route_pairs(pair_arr)
            )
            true_d = pair_true_distances(graph, pair_arr)
            st = stretch_stats(
                _stretch_values(batch.weight, true_d)[batch.delivered],
                delivered=batch.delivered_count,
                attempted=batch.attempted,
                bound=bound,
            )
            delivery = (
                batch.delivered_count / batch.attempted if batch.attempted else 1.0
            )

            result.epochs.append(
                ChurnEpoch(
                    epoch=epoch,
                    classes=list(delta.classes()),
                    method=method,
                    update_seconds=update_seconds,
                    n=graph.n,
                    m=graph.m,
                    dirty_clusters=int(stats.get("dirty_clusters", 0)),
                    clean_clusters=int(stats.get("clean_clusters", 0)),
                    entries_rebuilt=int(stats.get("entries_rebuilt", 0)),
                    entries_reused=int(stats.get("entries_reused", 0)),
                    delivery=delivery,
                    mean_stretch=st.mean,
                    max_stretch=st.max,
                    key=key,
                    version=version,
                )
            )
    return result


def _update(arrays, graph, delta, ported, policy, kernel, rebuild_rng):
    """Apply one delta per ``policy``; returns the new scheme state.

    Returns ``(method, graph', ported', arrays', stats)`` where
    ``stats`` is the patch-stats dict (empty for a full rebuild).
    """
    if policy in ("patch", "auto"):
        try:
            patched = patch_arrays(
                arrays, graph, delta, ported=ported, kernel=kernel
            )
            return (
                "patch", patched.graph, patched.ported, patched.arrays,
                dict(patched.stats),
            )
        except PreprocessingError:
            if policy == "patch":
                raise
            TELEMETRY.count("churn.patch_fallbacks")
    new_graph, _ = apply_delta(graph, delta)
    new_ported = assign_ports(new_graph, "sorted")
    new_arrays = build_arrays(
        new_graph, arrays.k, ported=new_ported, rng=rebuild_rng, kernel=kernel
    )
    return "rebuild", new_graph, new_ported, new_arrays, {}
