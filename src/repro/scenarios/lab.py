"""Run declarative resilience scenarios end-to-end, vectorized.

One :func:`run_scenario` call takes a
:class:`~repro.scenarios.spec.ScenarioSpec` through the whole stack:
generate the graph family, build (or fetch from a
:class:`~repro.store.SchemeStore` — the scheme is a pure function of
``(graph, k, seed, ports)``, so a warm store turns the build step into
an mmap) the scheme, compile it once, draw the workload and the
``(trials, m)`` dead-edge matrix from the named failure model, and
sweep every trial simultaneously through
:func:`~repro.sim.failures.survivability_sweep`.

Determinism contract: everything derives from ``spec.seed`` via
:func:`repro.rng.derive` with fixed tags, so the same spec always
reproduces the same graph, ports, scheme, pairs, failure sets and
therefore the same delivery numbers — whether the scheme came from the
store or a fresh build, and whichever engine routes it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..analysis.experiments import reference_graph
from ..core.build import build_arrays
from ..graphs.graph import Graph
from ..graphs.ports import assign_ports
from ..rng import derive
from ..sim.engine.compile import compile_from_arrays
from ..sim.failures import failure_trials, survivability_sweep
from ..sim.workloads import make_workload
from .spec import ScenarioSpec


def default_failure_params(graph: Graph, model: str) -> Dict[str, float]:
    """Graph-scaled default parameters of each failure model.

    Used when a spec carries no explicit ``failure_params``: 2% i.i.d.
    edge death, one ball of radius the median edge weight (the
    epicenter's immediate neighborhood — keep outages local), ~2% of
    vertices down, churn up to 10% of edges.
    """
    if model == "iid-edges":
        return {"rate": 0.02}
    if model == "geo-ball":
        med = float(np.median(graph.edge_weights)) if graph.m else 1.0
        return {"radius": med}
    if model == "node-down":
        return {"f": max(1, graph.n // 50)}
    if model == "churn":
        return {"f_final": max(1, graph.m // 10)}
    return {}


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario (spec + per-trial numbers)."""

    spec: ScenarioSpec
    n: int
    m: int
    delivery_rates: List[float]
    connected_fraction: float
    engine: str
    store_hit: Optional[bool] = None
    build_seconds: float = 0.0
    sweep_seconds: float = 0.0
    failure_params: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_delivery(self) -> float:
        """Mean per-trial delivery rate among still-connected pairs."""
        return float(np.mean(self.delivery_rates)) if self.delivery_rates else 1.0

    @property
    def min_delivery(self) -> float:
        """Worst trial's delivery rate (the tail the sweep is for)."""
        return float(np.min(self.delivery_rates)) if self.delivery_rates else 1.0

    def row(self) -> Dict[str, object]:
        """One report-table row (consumed by the reporting layer)."""
        return {
            "scenario": self.spec.name,
            "graph": self.spec.graph,
            "n": self.n,
            "m": self.m,
            "k": self.spec.k,
            "workload": self.spec.workload,
            "failures": self.spec.failure_model,
            "trials": self.spec.trials,
            "delivery_mean": round(self.mean_delivery, 4),
            "delivery_min": round(self.min_delivery, 4),
            "connected": round(self.connected_fraction, 4),
            "engine": self.engine,
            "sweep_s": round(self.sweep_seconds, 3),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict: the spec plus every measured field."""
        return {
            "spec": self.spec.to_dict(),
            "name": self.spec.name,
            "n": self.n,
            "m": self.m,
            "delivery_rates": [float(r) for r in self.delivery_rates],
            "delivery_mean": self.mean_delivery,
            "delivery_min": self.min_delivery,
            "connected_fraction": self.connected_fraction,
            "engine": self.engine,
            "store_hit": self.store_hit,
            "build_seconds": round(self.build_seconds, 4),
            "sweep_seconds": round(self.sweep_seconds, 4),
            "failure_params": self.failure_params,
        }


def run_scenario(spec: ScenarioSpec, *, store=None, _cache=None) -> ScenarioResult:
    """Run one scenario end-to-end (see module docstring).

    ``store`` is an optional :class:`~repro.store.SchemeStore`; when
    given, the scheme comes from ``get_or_build`` (bit-identical to a
    fresh build, file-backed either way), so repeated sweeps over the
    same ``(graph, k, seed)`` pay construction once across runs *and*
    processes.  ``_cache`` is the per-sweep memo :func:`run_scenarios`
    threads through: grid cells that differ only in workload/failure
    model share one graph, port assignment and scheme build (the spec
    dimensions those depend on are exactly ``(graph, n, k, seed)``).
    """
    graph_key = ("graph", spec.graph, spec.n, spec.seed)
    if _cache is not None and graph_key in _cache:
        graph, ported = _cache[graph_key]
    else:
        graph = reference_graph(spec.graph, spec.n, spec.seed).largest_component()
        ported = assign_ports(
            graph,
            "random",
            rng=derive(spec.seed, "scenario-ports", spec.graph, spec.n),
        )
        if _cache is not None:
            _cache[graph_key] = (graph, ported)

    t0 = time.perf_counter()
    store_hit: Optional[bool] = None
    scheme_key = ("scheme", spec.graph, spec.n, spec.k, spec.seed)
    if store is not None:
        store_hit = store.key_for(graph, spec.k, spec.seed, ported) in store
        stored = store.get_or_build(
            graph, spec.k, spec.seed, ported=ported, kernel=spec.kernel
        )
        arrays, compiled = stored.arrays, stored.compiled
    elif _cache is not None and scheme_key in _cache:
        arrays, compiled = _cache[scheme_key]
    else:
        arrays = build_arrays(
            graph, spec.k, ported=ported, rng=spec.seed, kernel=spec.kernel
        )
        compiled = compile_from_arrays(arrays, ported)
        if _cache is not None:
            _cache[scheme_key] = (arrays, compiled)
    if spec.handshake:
        compiled = compiled.with_handshake()
    build_seconds = time.perf_counter() - t0

    pairs = make_workload(
        graph,
        spec.workload,
        spec.pairs,
        derive(spec.seed, "scenario-pairs", spec.workload),
    )
    params = spec.params or default_failure_params(graph, spec.failure_model)
    masks = failure_trials(
        graph,
        spec.failure_model,
        spec.trials,
        rng=derive(spec.seed, "scenario-failures", spec.failure_model),
        **params,
    )

    t0 = time.perf_counter()
    if spec.engine == "reference":
        from ..core.build.arrays import scheme_from_arrays

        scheme = scheme_from_arrays(graph, ported, arrays)
        if spec.handshake:
            from ..core.handshake import HandshakeRoutingScheme

            scheme = HandshakeRoutingScheme(scheme)
        sweep = survivability_sweep(
            ported, scheme, masks, pairs, engine="reference"
        )
    else:
        from ..sim.engine.batch import BatchRouter

        router = BatchRouter.from_compiled(compiled, ported, kernel=spec.kernel)
        sweep = survivability_sweep(
            ported, None, masks, pairs, engine=spec.engine, router=router
        )
    sweep_seconds = time.perf_counter() - t0

    return ScenarioResult(
        spec=spec,
        n=graph.n,
        m=graph.m,
        delivery_rates=[float(r) for r in sweep.delivery_rates],
        connected_fraction=(
            float(sweep.connected.mean()) if sweep.connected.size else 1.0
        ),
        engine=sweep.engine,
        store_hit=store_hit,
        build_seconds=build_seconds,
        sweep_seconds=sweep_seconds,
        failure_params=dict(params),
    )


def run_scenarios(
    specs: Iterable[ScenarioSpec], *, store=None, progress=None
) -> List[ScenarioResult]:
    """Run a list of scenarios in order; optional ``progress(spec)`` hook.

    Grid cells that share ``(graph, n, k, seed)`` — e.g. the same graph
    swept over several workloads and failure models — reuse one graph,
    port assignment and scheme build through a sweep-local memo (results
    are bit-identical to building per cell; the build is a pure
    function of those dimensions).
    """
    cache: Dict[tuple, object] = {}
    results = []
    for spec in specs:
        if progress is not None:
            progress(spec)
        results.append(run_scenario(spec, store=store, _cache=cache))
    return results
