"""Render backend-frontier sweeps as JSON documents and markdown reports.

:func:`repro.backends.frontier.run_frontier` produces
:class:`~repro.backends.frontier.FrontierPoint` lists; this module turns
them into the campaign artifacts, exactly like
:mod:`repro.analysis.scenario_report` does for the scenario lab:

* a **JSON document** carrying every measured point (space, stretch,
  timings, capability flags, Pareto membership) for later re-analysis;
* a **markdown report** with one row per point through the shared table
  renderer, Pareto-frontier points starred, plus a per-graph frontier
  summary.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .reporting import render_markdown_table, render_table


def frontier_rows(points: Sequence) -> List[Dict[str, object]]:
    """One summary table row per :class:`FrontierPoint`."""
    return [p.row() for p in points]


def frontier_report_dict(points: Sequence) -> Dict[str, object]:
    """The full machine-readable report document."""
    return {
        "kind": "tz-frontier-report",
        "points": [p.to_dict() for p in points],
    }


def render_frontier_table(points: Sequence, *, title: Optional[str] = None) -> str:
    """Aligned plain-text summary table (what the CLI prints)."""
    return render_table(frontier_rows(points), title=title)


def render_frontier_markdown(
    points: Sequence, *, title: str = "Backend frontier"
) -> str:
    """The markdown report: heading, full table, per-graph Pareto sets."""
    lines = [f"# {title}", "", render_markdown_table(frontier_rows(points))]
    by_graph: Dict[str, List] = {}
    for p in points:
        by_graph.setdefault(f"{p.family}/{p.n}", []).append(p)
    summary = []
    for graph_name in sorted(by_graph):
        front = [p for p in by_graph[graph_name] if p.pareto]
        names = ", ".join(
            f"`{p.backend}`" + (f" (k={p.k})" if p.k is not None else "")
            for p in sorted(front, key=lambda p: p.size_bits)
        )
        summary.append(f"- **{graph_name}**: {names}")
    if summary:
        lines += [
            "",
            "## Pareto frontier (space × observed stretch × query time)",
            "",
        ] + summary
    lines.append("")
    return "\n".join(lines)


def write_frontier_json(points: Sequence, path: Union[str, Path]) -> Path:
    """Write the JSON report document; returns the path."""
    p = Path(path)
    with open(p, "w") as fh:
        json.dump(frontier_report_dict(points), fh, indent=2)
    return p


def write_frontier_markdown(
    points: Sequence, path: Union[str, Path], *, title: str = "Backend frontier"
) -> Path:
    """Write the markdown report; returns the path."""
    p = Path(path)
    p.write_text(render_frontier_markdown(points, title=title))
    return p
