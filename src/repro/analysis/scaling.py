"""Log-log scaling fits for the paper-vs-measured acceptance criteria.

DESIGN.md §4 phrases several shapes as slopes ("table bits grow ≈
n^{1/k}"); this module turns a measured (n, value) series into a fitted
exponent with a goodness-of-fit score, so EXPERIMENTS.md can report
"measured exponent 0.54 vs theory 0.50 (R² = 0.99)" instead of
eyeballing ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """The fit ``value ≈ coeff · n^exponent``."""

    exponent: float
    coeff: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.coeff * n**self.exponent

    def describe(self, theory: float) -> str:
        return (
            f"measured exponent {self.exponent:.2f} vs theory "
            f"{theory:.2f} (R²={self.r_squared:.3f})"
        )


def fit_power_law(ns: Sequence[float], values: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log value`` against ``log n``.

    Requires at least two distinct positive ``n`` and positive values.
    """
    ns_arr = np.asarray(ns, dtype=np.float64)
    val_arr = np.asarray(values, dtype=np.float64)
    if ns_arr.size < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(ns_arr <= 0) or np.any(val_arr <= 0):
        raise ValueError("power-law fit needs positive finite inputs")
    x = np.log(ns_arr)
    y = np.log(val_arr)
    if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
        raise ValueError("power-law fit needs positive finite inputs")
    if np.allclose(x, x[0]):
        raise ValueError("need at least two distinct n values")
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (slope * x + intercept)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(float(slope), float(math.exp(intercept)), r2)


def polylog_corrected_fit(
    ns: Sequence[float], values: Sequence[float], log_power: float = 2.0
) -> PowerLawFit:
    """Fit after dividing out a ``log^p n`` factor.

    TZ table sizes are ``Õ(n^{1/k})`` — ``n^{1/k}·polylog`` — so the raw
    slope over a small n-range overestimates the exponent.  Dividing by
    ``log²n`` (our accounting's polylog: #entries × entry width) exposes
    the polynomial part; F4/F5 in EXPERIMENTS.md report both.
    """
    corrected = [
        v / (math.log2(max(2.0, n)) ** log_power) for n, v in zip(ns, values)
    ]
    return fit_power_law(ns, corrected)


def doubling_ratio(ns: Sequence[float], values: Sequence[float]) -> float:
    """Average growth factor per doubling of n (geometric mean)."""
    ns = list(ns)
    values = list(values)
    if len(ns) < 2:
        raise ValueError("need at least two points")
    total = values[-1] / values[0]
    doublings = math.log2(ns[-1] / ns[0])
    if doublings <= 0:
        raise ValueError("n values must increase")
    return total ** (1.0 / doublings)
