"""Human-readable rendering of telemetry: span trees and metric tables.

``repro profile`` prints these; ``--markdown`` style reports can embed
them.  The span tree shows, per span, the cumulative wall time, the
*self* time (cumulative minus children — the time actually spent in
that phase's own code) and the share of the root's wall time, so "where
does builder time go" is one read:

    span                               cum s   self s  %cum
    ---------------------------------  ------  ------  ----
    profile                            2.514   0.021   100.0
      build.arrays                     1.930   0.004   76.8
        build.clusters[level=0]        0.912   0.912   36.3
        ...

Machine-readable exports (JSON-lines trace, metrics JSON) live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..obs.export import metrics_doc
from ..obs.telemetry import TELEMETRY, Telemetry
from .reporting import render_table

__all__ = [
    "render_metrics",
    "render_span_tree",
    "span_rows",
    "write_obs_markdown",
]


def _attr_suffix(attrs: Dict[str, object]) -> str:
    """``[k=v,...]`` label suffix of a span's attributes ('' if none)."""
    if not attrs:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"[{inner}]"


def span_rows(tm: Optional[Telemetry] = None) -> List[Dict[str, object]]:
    """Table rows of the span forest: name, cum/self seconds, % of root.

    Percentages are of the first root span's cumulative time (the
    conventional "whole run" span the CLI opens).
    """
    tm = TELEMETRY if tm is None else tm
    total_ns = tm.roots[0].duration_ns if tm.roots else 0
    rows: List[Dict[str, object]] = []
    for sp, depth in tm.spans():
        share = 100.0 * sp.duration_ns / total_ns if total_ns else 0.0
        rows.append(
            {
                "span": "  " * depth + sp.name + _attr_suffix(sp.attrs),
                "cum s": f"{sp.seconds:.3f}",
                "self s": f"{sp.self_ns / 1e9:.3f}",
                "%cum": f"{share:.1f}",
            }
        )
    return rows


def render_span_tree(
    tm: Optional[Telemetry] = None, *, title: Optional[str] = None
) -> str:
    """The span forest as an aligned text table (see module docstring)."""
    rows = span_rows(tm)
    if not rows:
        return (title + "\n" if title else "") + "(no spans recorded)"
    return render_table(rows, title=title)


def render_metrics(
    tm: Optional[Telemetry] = None, *, title: Optional[str] = None
) -> str:
    """Counters, gauges and histogram summaries as text tables."""
    doc = metrics_doc(tm)
    blocks: List[str] = []
    if title:
        blocks.append(title)
    counter_rows = [
        {"counter": name, "value": f"{value:g}"}
        for name, value in sorted(doc["counters"].items())
    ]
    if counter_rows:
        blocks.append(render_table(counter_rows))
    gauge_rows = [
        {"gauge": name, "value": f"{value:g}"}
        for name, value in sorted(doc["gauges"].items())
    ]
    if gauge_rows:
        blocks.append(render_table(gauge_rows))
    hist_rows = [
        {
            "histogram": name,
            "count": h["count"],
            "mean": f"{h['mean']:.6g}",
            "p50": f"{h['p50']:.6g}",
            "p99": f"{h['p99']:.6g}",
            "max": f"{h['max']:.6g}",
        }
        for name, h in sorted(doc["histograms"].items())
    ]
    if hist_rows:
        blocks.append(render_table(hist_rows))
    if len(blocks) == (1 if title else 0):
        blocks.append("(no metrics recorded)")
    return "\n\n".join(blocks)


def write_obs_markdown(
    path: Union[str, "object"], tm: Optional[Telemetry] = None
) -> str:
    """Write a markdown observability report (span tree + metrics).

    Returns the path written.  The tables are fenced as code blocks —
    the aligned text form reads better than a 4-column markdown table
    for deep trees.
    """
    tm = TELEMETRY if tm is None else tm
    parts = [
        "# Telemetry report",
        "",
        "## Span tree",
        "",
        "```",
        render_span_tree(tm),
        "```",
        "",
        "## Metrics",
        "",
        "```",
        render_metrics(tm),
        "```",
        "",
    ]
    with open(path, "w") as fh:
        fh.write("\n".join(parts))
    return str(path)
