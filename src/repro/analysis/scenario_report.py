"""Render scenario-lab sweeps as JSON documents and markdown reports.

The scenario lab (:mod:`repro.scenarios`) produces
:class:`~repro.scenarios.lab.ScenarioResult` lists; this module turns
them into the two artifacts an evaluation campaign needs:

* a **JSON document** (:func:`scenario_report_dict` /
  :func:`write_scenario_json`) carrying every spec and every per-trial
  delivery rate — the machine-readable record a later analysis can
  re-aggregate without rerunning anything;
* a **markdown report** (:func:`render_scenario_markdown` /
  :func:`write_scenario_markdown`) with one summary row per scenario,
  rendered through the same table renderer the experiment suite uses,
  so scenario tables look exactly like the EXPERIMENTS.md tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .reporting import render_markdown_table, render_table


def scenario_rows(results: Sequence) -> List[Dict[str, object]]:
    """One summary table row per :class:`ScenarioResult`."""
    return [r.row() for r in results]


def scenario_report_dict(results: Sequence) -> Dict[str, object]:
    """The full machine-readable report document."""
    return {
        "kind": "tz-scenario-report",
        "scenarios": [r.to_dict() for r in results],
    }


def render_scenario_table(results: Sequence, *, title: Optional[str] = None) -> str:
    """Aligned plain-text summary table (what the CLI prints)."""
    return render_table(scenario_rows(results), title=title)


def render_scenario_markdown(
    results: Sequence, *, title: str = "Scenario sweep"
) -> str:
    """The markdown report: a heading, the summary table, per-trial tails.

    Below the summary table, scenarios whose worst trial dipped below
    their mean get a one-line callout with the worst trial's rate — the
    tail is the point of running many trials.
    """
    lines = [f"# {title}", "", render_markdown_table(scenario_rows(results))]
    tails = [
        f"- `{r.spec.name}`: worst trial delivered "
        f"{r.min_delivery:.1%} (mean {r.mean_delivery:.1%})"
        for r in results
        if r.min_delivery < r.mean_delivery
    ]
    if tails:
        lines += ["", "## Worst-trial tails", ""] + tails
    lines.append("")
    return "\n".join(lines)


def write_scenario_json(results: Sequence, path: Union[str, Path]) -> Path:
    """Write the JSON report document; returns the path."""
    p = Path(path)
    with open(p, "w") as fh:
        json.dump(scenario_report_dict(results), fh, indent=2)
    return p


def write_scenario_markdown(
    results: Sequence, path: Union[str, Path], *, title: str = "Scenario sweep"
) -> Path:
    """Write the markdown report; returns the path."""
    p = Path(path)
    p.write_text(render_scenario_markdown(results, title=title))
    return p
