"""The experiment suite: one function per paper table/figure.

Each ``exp_*`` function regenerates the rows for one artifact of
DESIGN.md §4 (T1, F2–F9, A1–A2) at a chosen ``scale``:

* ``"small"`` — seconds-scale instances used by the test-suite and the
  pytest benchmarks;
* ``"full"``  — the instances recorded in EXPERIMENTS.md.

Everything is deterministic in ``seed`` (see :mod:`repro.rng`).

Routing measurements go through :func:`repro.sim.runner.measure_scheme`
with its default ``engine="auto"``, i.e. the vectorized batch engine for
every compiled TZ scheme — bit-for-bit identical to the hop-by-hop
simulator (enforced by the equivalence suite), just orders of magnitude
faster, which is what makes the ``full`` scale's pair counts practical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..baselines.cowen import build_cowen_scheme
from ..baselines.shortest_path_routing import build_shortest_path_scheme
from ..baselines.tree_spanner import build_single_tree_scheme
from ..core.handshake import HandshakeRoutingScheme
from ..core.landmarks import center
from ..core.scheme_k import build_tz_scheme
from ..core.scheme_k2 import build_stretch3_scheme, default_s
from ..errors import PreprocessingError
from ..graphs import generators as gen
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph, assign_ports, designer_ports_for_tree
from ..graphs.shortest_paths import all_pairs_shortest_paths, dijkstra
from ..graphs.trees import tree_from_parents
from ..oracles.distance_oracle import build_distance_oracle
from ..rng import derive, sample_pairs
from ..sim.runner import measure_scheme
from ..sim.stats import space_stats
from ..trees.interval import IntervalRoutingScheme
from ..trees.tz_tree import build_tree_router
from . import bounds


@dataclass
class ExperimentResult:
    """Rows plus metadata for one experiment."""

    exp_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def columns(self) -> List[str]:
        return list(self.rows[0].keys()) if self.rows else []


# ----------------------------------------------------------------------
# Shared workload builders
# ----------------------------------------------------------------------
def _scale_params(scale: str) -> Dict[str, object]:
    if scale == "small":
        return {
            "n_ref": 256,
            "n_sweep": [128, 256, 384],
            "tree_sizes": [64, 256, 1024],
            "k_values": [2, 3],
            "pairs": 300,
            "seeds": 2,
        }
    if scale == "full":
        return {
            "n_ref": 1024,
            "n_sweep": [256, 512, 1024, 2048],
            "tree_sizes": [64, 256, 1024, 4096, 16384],
            "k_values": [2, 3, 4, 5],
            "pairs": 2000,
            "seeds": 3,
        }
    raise ValueError(f"unknown scale {scale!r}; use 'small' or 'full'")


def reference_graph(name: str, n: int, seed) -> Graph:
    """The named workload graphs used across experiments."""
    rng = derive(seed, "graph", name, n)
    if name == "gnp":
        p = min(1.0, 8.0 / max(1, n - 1))  # average degree ~8
        return gen.gnp(n, p, rng=rng, weights=(1, 16))
    if name == "ba":
        return gen.barabasi_albert(n, 4, rng=rng, weights=(1, 16))
    if name == "as-like":
        return gen.internet_as_like(n, rng=rng)
    if name == "grid":
        side = max(2, int(math.sqrt(n)))
        return gen.grid2d(side, side, rng=rng)
    if name == "geometric":
        r = math.sqrt(10.0 / max(1, n))
        return gen.random_geometric(n, r, rng=rng, weights=(1, 16))
    raise ValueError(f"unknown reference graph {name!r}")


def _measured_row(
    graph: Graph,
    ported: PortedGraph,
    scheme,
    D: np.ndarray,
    pairs: np.ndarray,
) -> Dict[str, object]:
    st = measure_scheme(ported, scheme, pairs=pairs, true_dist=D)
    sp = space_stats(scheme)
    return {
        "scheme": scheme.name,
        "stretch_bound": scheme.stretch_bound(),
        "max_stretch": round(st.max, 3),
        "avg_stretch": round(st.mean, 3),
        "violations": st.violations,
        "max_table_bits": sp.max_table_bits,
        "avg_table_bits": round(sp.avg_table_bits, 0),
        "max_label_bits": sp.max_label_bits,
    }


# ----------------------------------------------------------------------
# T1 — the paper's comparison table
# ----------------------------------------------------------------------
def exp_t1(scale: str = "small", seed=0) -> ExperimentResult:
    """Prior art vs TZ: measured stretch/space on the reference graphs.

    Reproduces the shape of the paper's introduction table: full tables
    (stretch 1, huge), single tree (tiny, unbounded stretch), Cowen
    stretch-3 (Õ(n^{2/3})), TZ stretch-3 (Õ(n^{1/2})), TZ general k,
    and the handshaking variants.
    """
    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "t1",
        "T1: scheme comparison (stretch vs space), "
        f"reference graphs at n={n}",
        notes="Space ordering should be SP >> Cowen >> TZ-k2 >> TZ-k3..., "
        "stretch ordering reversed — same winners as the paper's table.",
    )
    for gname in ("gnp", "ba"):
        graph = reference_graph(gname, n, seed)
        ported = assign_ports(graph, "random", rng=derive(seed, "ports", gname))
        D = all_pairs_shortest_paths(graph)
        pairs = sample_pairs(derive(seed, "pairs", gname), graph.n, int(p["pairs"]))
        schemes = [
            build_shortest_path_scheme(graph, ported),
            build_single_tree_scheme(graph, ported),
            build_cowen_scheme(graph, ported, rng=derive(seed, "cowen", gname)),
            build_stretch3_scheme(graph, ported, rng=derive(seed, "tz2", gname)),
        ]
        for k in p["k_values"]:
            if k == 2:
                continue
            base = build_tz_scheme(
                graph, ported, k=k, rng=derive(seed, "tzk", gname, k)
            )
            schemes.append(base)
            schemes.append(HandshakeRoutingScheme(base))
        for scheme in schemes:
            row = {"graph": gname, "n": graph.n}
            row.update(_measured_row(graph, ported, scheme, D, pairs))
            result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# F2 — tree routing (Theorem 2.1)
# ----------------------------------------------------------------------
def exp_f2(scale: str = "small", seed=0) -> ExperimentResult:
    """Tree-routing label and table sizes across tree families.

    Designer-port labels should track c·log₂n bits with a small constant
    (the (1+o(1))·log n shape); fixed-port labels grow like log²n on deep
    trees; TZ records stay O(1) words while the interval-routing baseline
    grows with the degree.
    """
    p = _scale_params(scale)
    result = ExperimentResult(
        "f2",
        "F2: tree routing — label/table bits vs n (Thm 2.1)",
        notes="designer ports ~= c*log2(n) bits, fixed ports up to "
        "O(log^2 n); TZ records O(1) words vs interval tables O(deg).",
    )
    for family, make in gen.TREE_FAMILIES.items():
        for n in p["tree_sizes"]:
            rng = derive(seed, "f2", family, n)
            tree_graph = make(n, rng)
            n_actual = tree_graph.n
            _, parent = dijkstra(tree_graph, 0)
            pmap = {v: int(parent[v]) for v in range(n_actual)}
            pmap[0] = -1
            rooted = tree_from_parents(0, pmap)
            designer = designer_ports_for_tree(tree_graph, rooted)
            fixed = assign_ports(tree_graph, "random", rng=rng)
            r_designer = build_tree_router(rooted, designer, port_model="designer")
            r_fixed = build_tree_router(rooted, fixed, port_model="fixed")
            interval = IntervalRoutingScheme(rooted, fixed)
            max_port = int(tree_graph.degrees().max())
            label_bits_d = [r_designer.label_bits(v) for v in range(n_actual)]
            label_bits_f = [r_fixed.label_bits(v) for v in range(n_actual)]
            result.rows.append(
                {
                    "family": family,
                    "n": n_actual,
                    "log2n": bounds.log2n_bits(n_actual),
                    "designer_max_label": max(label_bits_d),
                    "designer_avg_label": round(float(np.mean(label_bits_d)), 1),
                    "fixed_max_label": max(label_bits_f),
                    "tz_max_record": max(
                        r_fixed.record_bits(v, max_port) for v in range(n_actual)
                    ),
                    "interval_max_table": interval.max_record_bits(max_port),
                    "light_depth": rooted.max_light_depth(),
                }
            )
    return result


# ----------------------------------------------------------------------
# F3 — the center algorithm (Theorem 3.1)
# ----------------------------------------------------------------------
def exp_f3(scale: str = "small", seed=0) -> ExperimentResult:
    """|A| vs the O(s·log n) prediction and max cluster vs the 4n/s cap."""
    p = _scale_params(scale)
    result = ExperimentResult(
        "f3",
        "F3: center(G, s) guarantees (Thm 3.1)",
        notes="cap_ok must be 'yes' on every row (hard guarantee); |A| "
        "should track ~2*s*ln(n) (expectation).",
    )
    from ..core.clusters import compute_all_clusters

    for gname in ("gnp", "ba"):
        for n in p["n_sweep"]:
            graph = reference_graph(gname, n, seed)
            D = all_pairs_shortest_paths(graph)
            for s_mul in (0.5, 1.0, 2.0):
                s = max(2.0, s_mul * default_s(graph.n))
                A = center(
                    graph, s, derive(seed, "f3", gname, n, int(s_mul * 10)),
                    dist_matrix=D,
                )
                dA = D[A].min(axis=0)
                non_landmarks = [w for w in range(graph.n) if w not in set(A.tolist())]
                sizes = (D[non_landmarks] < dA[None, :]).sum(axis=1)
                cap = bounds.cluster_cap(graph.n, s)
                result.rows.append(
                    {
                        "graph": gname,
                        "n": graph.n,
                        "s": round(s, 1),
                        "|A|": int(A.size),
                        "E|A|_ref": round(bounds.expected_landmarks(graph.n, s), 0),
                        "max_cluster": int(sizes.max()) if len(sizes) else 0,
                        "cap_4n/s": round(cap, 1),
                        "cap_ok": bool(sizes.size == 0 or sizes.max() <= cap),
                    }
                )
    return result


# ----------------------------------------------------------------------
# F4 — stretch-3 scheme scaling (§3)
# ----------------------------------------------------------------------
def exp_f4(scale: str = "small", seed=0) -> ExperimentResult:
    """Max stretch ≤ 3 on every run; table bits vs the √n·polylog curve."""
    p = _scale_params(scale)
    result = ExperimentResult(
        "f4",
        "F4: stretch-3 scheme — stretch and table scaling (§3)",
        notes="max_stretch <= 3.0 exactly; max_table_bits should grow "
        "~sqrt(n)*polylog (compare 'sqrtn_ref' column ratios).",
    )
    for gname in ("gnp", "ba"):
        for n in p["n_sweep"]:
            graph = reference_graph(gname, n, seed)
            ported = assign_ports(graph, "random", rng=derive(seed, "f4p", gname, n))
            D = all_pairs_shortest_paths(graph)
            pairs = sample_pairs(
                derive(seed, "f4", gname, n), graph.n, int(p["pairs"])
            )
            scheme = build_stretch3_scheme(
                graph, ported, rng=derive(seed, "f4s", gname, n)
            )
            st = measure_scheme(ported, scheme, pairs=pairs, true_dist=D)
            sp = space_stats(scheme)
            result.rows.append(
                {
                    "graph": gname,
                    "n": graph.n,
                    "landmarks": scheme.landmark_count(),
                    "max_stretch": round(st.max, 3),
                    "avg_stretch": round(st.mean, 3),
                    "violations": st.violations,
                    "max_table_bits": sp.max_table_bits,
                    "avg_table_bits": round(sp.avg_table_bits, 0),
                    "sqrtn_ref": round(bounds.tz_table_bound_bits(graph.n, 2), 0),
                    "max_label_bits": sp.max_label_bits,
                }
            )
    return result


# ----------------------------------------------------------------------
# F5 — the general scheme (Theorem 4.1)
# ----------------------------------------------------------------------
def exp_f5(scale: str = "small", seed=0) -> ExperimentResult:
    """k sweep: measured stretch vs 4k−5, tables vs n^{1/k}·polylog."""
    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "f5",
        f"F5: general scheme, k sweep at n={n} (Thm 4.1)",
        notes="max_stretch <= 4k-5 on every row; table bits shrink with "
        "k toward the n^{1/k} curve while stretch grows — the tradeoff.",
    )
    for gname in ("gnp", "ba"):
        graph = reference_graph(gname, n, seed)
        ported = assign_ports(graph, "random", rng=derive(seed, "f5p", gname))
        D = all_pairs_shortest_paths(graph)
        pairs = sample_pairs(derive(seed, "f5", gname), graph.n, int(p["pairs"]))
        for k in p["k_values"]:
            scheme = build_tz_scheme(
                graph, ported, k=k, rng=derive(seed, "f5s", gname, k)
            )
            st = measure_scheme(ported, scheme, pairs=pairs, true_dist=D)
            sp = space_stats(scheme)
            result.rows.append(
                {
                    "graph": gname,
                    "n": graph.n,
                    "k": k,
                    "bound_4k-5": bounds.tz_stretch_bound(k),
                    "max_stretch": round(st.max, 3),
                    "avg_stretch": round(st.mean, 3),
                    "violations": st.violations,
                    "max_table_bits": sp.max_table_bits,
                    "n^(1/k)_ref": round(bounds.tz_table_bound_bits(graph.n, k), 0),
                    "max_label_bits": sp.max_label_bits,
                }
            )
    return result


# ----------------------------------------------------------------------
# F6 — handshaking (Theorem 4.2)
# ----------------------------------------------------------------------
def exp_f6(scale: str = "small", seed=0) -> ExperimentResult:
    """Handshake on/off at each k: 2k−1 vs 4k−5, same tables."""
    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "f6",
        f"F6: handshaking — 2k−1 vs 4k−5 at n={n} (Thm 4.2)",
        notes="handshake max <= 2k-1 < 4k-5; handshake avg <= base avg.",
    )
    for gname in ("gnp", "ba"):
        graph = reference_graph(gname, n, seed)
        ported = assign_ports(graph, "random", rng=derive(seed, "f6p", gname))
        D = all_pairs_shortest_paths(graph)
        pairs = sample_pairs(derive(seed, "f6", gname), graph.n, int(p["pairs"]))
        for k in p["k_values"]:
            base = build_tz_scheme(
                graph, ported, k=k, rng=derive(seed, "f6s", gname, k)
            )
            hs = HandshakeRoutingScheme(base)
            st_base = measure_scheme(ported, base, pairs=pairs, true_dist=D)
            st_hs = measure_scheme(ported, hs, pairs=pairs, true_dist=D)
            hops = [
                hs.handshake_hops(int(s), int(t)) for s, t in pairs[: min(200, len(pairs))]
            ]
            result.rows.append(
                {
                    "graph": gname,
                    "k": k,
                    "base_bound": bounds.tz_stretch_bound(k),
                    "base_max": round(st_base.max, 3),
                    "base_avg": round(st_base.mean, 3),
                    "hs_bound": bounds.handshake_stretch_bound(k),
                    "hs_max": round(st_hs.max, 3),
                    "hs_avg": round(st_hs.mean, 3),
                    "hs_violations": st_hs.violations,
                    "avg_hs_steps": round(float(np.mean(hops)), 2),
                }
            )
    return result


# ----------------------------------------------------------------------
# F7 — Internet-like workloads (the paper's motivation)
# ----------------------------------------------------------------------
def exp_f7(scale: str = "small", seed=0) -> ExperimentResult:
    """TZ stretch-3 average stretch across topology families.

    The follow-on literature (Krioukov et al.) found TZ average stretch
    ≈1.1–1.3 on Internet-like graphs — far below the worst case; this
    experiment reproduces that contrast against grids and G(n,p).
    """
    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "f7",
        f"F7: average stretch by topology at n≈{n} (motivation)",
        notes="as-like avg_stretch should be the smallest of the three "
        "families (heavy-tailed degrees make landmarks excellent hubs).",
    )
    for gname in ("as-like", "gnp", "grid"):
        graph = reference_graph(gname, n, seed)
        ported = assign_ports(graph, "random", rng=derive(seed, "f7p", gname))
        D = all_pairs_shortest_paths(graph)
        pairs = sample_pairs(derive(seed, "f7", gname), graph.n, int(p["pairs"]))
        scheme = build_stretch3_scheme(
            graph, ported, rng=derive(seed, "f7s", gname)
        )
        st = measure_scheme(ported, scheme, pairs=pairs, true_dist=D)
        sp = space_stats(scheme)
        result.rows.append(
            {
                "graph": gname,
                "n": graph.n,
                "m": graph.m,
                "avg_stretch": round(st.mean, 3),
                "p50_stretch": round(st.median, 3),
                "p95_stretch": round(st.p95, 3),
                "p99_stretch": round(st.p99, 3),
                "max_stretch": round(st.max, 3),
                "p50_hops": round(st.hop_p50, 1),
                "p99_hops": round(st.hop_p99, 1),
                "violations": st.violations,
                "avg_table_bits": round(sp.avg_table_bits, 0),
            }
        )
    return result


# ----------------------------------------------------------------------
# F8 — distance oracle companion
# ----------------------------------------------------------------------
def exp_f8(scale: str = "small", seed=0) -> ExperimentResult:
    """Oracle query stretch ≤ 2k−1 and size scaling ~ k·n^{1+1/k}."""
    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "f8",
        f"F8: distance oracle at n={n} (STOC'01 companion)",
        notes="max_query_stretch <= 2k-1; size_words ~ k*n^{1+1/k}.",
    )
    for gname in ("gnp", "ba"):
        graph = reference_graph(gname, n, seed)
        D = all_pairs_shortest_paths(graph)
        pairs = sample_pairs(derive(seed, "f8", gname), graph.n, int(p["pairs"]))
        for k in p["k_values"]:
            oracle = build_distance_oracle(
                graph, k, rng=derive(seed, "f8s", gname, k)
            )
            ratios = []
            for s, t in pairs:
                est = oracle.query(int(s), int(t))
                d = float(D[int(s), int(t)])
                ratios.append(est / d if d > 0 else 1.0)
                if est + 1e-9 < d:
                    raise PreprocessingError(
                        f"oracle under-estimated d({s},{t}): {est} < {d}"
                    )
            arr = np.asarray(ratios)
            result.rows.append(
                {
                    "graph": gname,
                    "k": k,
                    "bound_2k-1": oracle.stretch_bound(),
                    "max_query_stretch": round(float(arr.max()), 3),
                    "avg_query_stretch": round(float(arr.mean()), 3),
                    "violations": int((arr > oracle.stretch_bound() + 1e-9).sum()),
                    "size_words": oracle.size_words(),
                    "kn^(1+1/k)_ref": round(k * graph.n ** (1 + 1.0 / k), 0),
                    "max_bunch": oracle.max_bunch_size(),
                }
            )
    return result


# ----------------------------------------------------------------------
# F9 — lower-bound context (§1)
# ----------------------------------------------------------------------
def exp_f9(scale: str = "small", seed=0) -> ExperimentResult:
    """TZ space vs the stretch<3 and girth-conjecture lower bounds.

    Shows the measured TZ-k2 per-vertex tables falling *under* the Ω(n)
    per-vertex bar that any stretch<3 scheme must exceed — i.e. stretch 3
    buys an asymptotic separation, exactly the paper's optimality story.
    """
    p = _scale_params(scale)
    result = ExperimentResult(
        "f9",
        "F9: measured space vs stretch<3 lower bound (§1)",
        notes="sp_table_bits grows ~n (it must); tz2_table_bits grows "
        "~sqrt(n) — the separation the lower bound says is unavoidable "
        "only below stretch 3.",
    )
    for n in p["n_sweep"]:
        graph = reference_graph("gnp", n, seed)
        ported = assign_ports(graph, "random", rng=derive(seed, "f9p", n))
        sp_scheme = build_shortest_path_scheme(graph, ported)
        tz2 = build_stretch3_scheme(graph, ported, rng=derive(seed, "f9s", n))
        result.rows.append(
            {
                "n": graph.n,
                "sp_table_bits": sp_scheme.max_table_bits(),
                "tz2_avg_table_bits": round(tz2.avg_table_bits(), 0),
                "tz2_max_table_bits": tz2.max_table_bits(),
                "lb_stretch<3_per_vertex": round(graph.n / 32.0 * 32, 0),
                "lb_total_stretch<3": round(
                    bounds.stretch3_space_lower_bound(graph.n), 0
                ),
                "girth_total_k2": round(bounds.girth_conjecture_space(graph.n, 2), 0),
            }
        )
    return result


# ----------------------------------------------------------------------
# A1 — ablation: sampling strategy
# ----------------------------------------------------------------------
def exp_a1(scale: str = "small", seed=0) -> ExperimentResult:
    """bernoulli vs capped hierarchy sampling at k=3 (DESIGN.md §2.5)."""
    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "a1",
        f"A1 (ablation): hierarchy sampling strategy, k=3, n={n}",
        notes="capped sampling should reduce max_table_bits spread across "
        "seeds without hurting stretch.",
    )
    graph = reference_graph("gnp", n, seed)
    ported = assign_ports(graph, "random", rng=derive(seed, "a1p"))
    D = all_pairs_shortest_paths(graph)
    pairs = sample_pairs(derive(seed, "a1pairs"), graph.n, int(p["pairs"]))
    for sampling in ("bernoulli", "capped"):
        maxima, stretches = [], []
        for trial in range(int(p["seeds"])):
            scheme = build_tz_scheme(
                graph,
                ported,
                k=3,
                rng=derive(seed, "a1", sampling, trial),
                sampling=sampling,
            )
            sp = space_stats(scheme)
            st = measure_scheme(ported, scheme, pairs=pairs, true_dist=D)
            maxima.append(sp.max_table_bits)
            stretches.append(st.max)
        result.rows.append(
            {
                "sampling": sampling,
                "trials": int(p["seeds"]),
                "max_table_bits_worst": int(max(maxima)),
                "max_table_bits_mean": int(np.mean(maxima)),
                "max_stretch_worst": round(max(stretches), 3),
            }
        )
    return result


# ----------------------------------------------------------------------
# A2 — ablation: pivot consistency off
# ----------------------------------------------------------------------
def exp_a2(scale: str = "small", seed=0) -> ExperimentResult:
    """Switch consistent pivots off and count construction failures.

    With naive nearest-witness pivots, a vertex whose level-i and
    level-(i+1) landmark distances tie may fall outside its own pivot's
    cluster — its label cannot even be built.  This quantifies how often
    that fires (it needs distance ties, so unweighted graphs are the
    stress case) and demonstrates *why* DESIGN.md §3 mandates consistency.
    """
    p = _scale_params(scale)
    result = ExperimentResult(
        "a2",
        "A2 (ablation): consistent vs naive pivots",
        notes="consistent pivots never fail; naive pivots fail on graphs "
        "with distance ties (unweighted grids are full of them).",
    )
    for gname, trials in (("grid", int(p["seeds"])), ("gnp", int(p["seeds"]))):
        n = min(400, int(p["n_ref"]))
        graph = reference_graph(gname, n, seed)
        if gname == "gnp":
            # strip weights -> force plenty of equal-length paths
            graph = Graph(graph.n, graph.edges, None)
        for consistent in (True, False):
            failures = 0
            for trial in range(trials):
                try:
                    build_tz_scheme(
                        graph,
                        k=3,
                        rng=derive(seed, "a2", gname, consistent, trial),
                        consistent_pivots=consistent,
                    )
                except PreprocessingError:
                    failures += 1
            result.rows.append(
                {
                    "graph": gname + " (unit weights)",
                    "consistent_pivots": consistent,
                    "trials": trials,
                    "label_construction_failures": failures,
                }
            )
    return result


# ----------------------------------------------------------------------
# X1 — extension: distance labels (STOC'01 corollary)
# ----------------------------------------------------------------------
def exp_x1(scale: str = "small", seed=0) -> ExperimentResult:
    """Distance labels: 2k−1 estimates from two labels alone; label size
    vs the Õ(n^{1/k}) prediction."""
    from ..oracles.distance_labels import build_distance_labels, query_steps

    p = _scale_params(scale)
    n = int(p["n_ref"])
    result = ExperimentResult(
        "x1",
        f"X1 (extension): distance labels at n={n}",
        notes="max_ratio <= 2k-1; avg_label_bits shrinks with k toward "
        "the n^{1/k} curve — the fully distributed oracle.",
    )
    for gname in ("gnp", "ba"):
        graph = reference_graph(gname, n, seed)
        D = all_pairs_shortest_paths(graph)
        pairs = sample_pairs(derive(seed, "x1", gname), graph.n, int(p["pairs"]))
        for k in p["k_values"]:
            labeling = build_distance_labels(
                graph, k, rng=derive(seed, "x1s", gname, k)
            )
            ratios, steps = [], []
            for s, t in pairs:
                d = float(D[int(s), int(t)])
                est = labeling.query(int(s), int(t))
                if est + 1e-9 < d:
                    raise PreprocessingError(
                        f"label query under-estimated d({s},{t})"
                    )
                ratios.append(est / d if d > 0 else 1.0)
                steps.append(
                    query_steps(labeling.labels[int(s)], labeling.labels[int(t)])
                )
            arr = np.asarray(ratios)
            result.rows.append(
                {
                    "graph": gname,
                    "k": k,
                    "bound_2k-1": labeling.stretch_bound(),
                    "max_ratio": round(float(arr.max()), 3),
                    "avg_ratio": round(float(arr.mean()), 3),
                    "violations": int(
                        (arr > labeling.stretch_bound() + 1e-9).sum()
                    ),
                    "avg_label_bits": round(labeling.avg_label_bits(), 0),
                    "max_label_bits": labeling.max_label_bits(),
                    "avg_query_steps": round(float(np.mean(steps)), 2),
                }
            )
    return result


# ----------------------------------------------------------------------
# X2 — extension: (2k−1)-spanners from the cluster trees
# ----------------------------------------------------------------------
def exp_x2(scale: str = "small", seed=0) -> ExperimentResult:
    """Spanner H = ∪ E(T_w): size vs k·n^{1+1/k}, stretch ≤ 2k−1."""
    from ..oracles.spanner import build_spanner, spanner_size_bound

    p = _scale_params(scale)
    n = min(int(p["n_ref"]), 1024)  # spanner check needs a second APSP
    result = ExperimentResult(
        "x2",
        f"X2 (extension): (2k−1)-spanners at n={n}",
        notes="measured_stretch <= 2k-1; spanner edges <= ~k*n^{1+1/k} "
        "and shrink as k grows.",
    )
    for gname in ("gnp", "ba"):
        graph = reference_graph(gname, n, seed)
        D = all_pairs_shortest_paths(graph)
        for k in p["k_values"]:
            spanner = build_spanner(graph, k, rng=derive(seed, "x2s", gname, k))
            Ds = all_pairs_shortest_paths(spanner)
            with np.errstate(invalid="ignore"):
                ratio = np.where(D > 0, Ds / np.maximum(D, 1e-12), 1.0)
            worst = float(np.nanmax(ratio))
            result.rows.append(
                {
                    "graph": gname,
                    "k": k,
                    "bound_2k-1": 1.0 if k == 1 else float(2 * k - 1),
                    "measured_stretch": round(worst, 3),
                    "graph_edges": graph.m,
                    "spanner_edges": spanner.m,
                    "kn^(1+1/k)_ref": round(spanner_size_bound(graph.n, k), 0),
                }
            )
    return result


# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "t1": exp_t1,
    "f2": exp_f2,
    "f3": exp_f3,
    "f4": exp_f4,
    "f5": exp_f5,
    "f6": exp_f6,
    "f7": exp_f7,
    "f8": exp_f8,
    "f9": exp_f9,
    "a1": exp_a1,
    "a2": exp_a2,
    "x1": exp_x1,
    "x2": exp_x2,
}


def run_experiment(exp_id: str, scale: str = "small", seed=0) -> ExperimentResult:
    """Dispatch by experiment id (see DESIGN.md §4)."""
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](scale=scale, seed=seed)
