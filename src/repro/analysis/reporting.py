"""Render experiment rows as aligned text / markdown tables.

Benchmarks print through these functions so that what lands in the bench
log is byte-identical in structure to the rows recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Aligned plain-text table from a list of dict rows."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_stretch_summary(stats, *, title: Optional[str] = None) -> str:
    """One-row table for a :class:`~repro.sim.stats.StretchStats`.

    Includes the p50/p95/p99 stretch percentiles and, when the stats
    carry them, the hop-count percentiles — the tail view the batch
    engine's large samples are for (used by ``repro route``).
    """
    return render_table([stats.row()], title=title)


def render_markdown_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """GitHub-flavored markdown table from a list of dict rows."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    out = ["| " + " | ".join(cols) + " |", "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(_fmt(r.get(c, "")) for c in cols) + " |")
    return "\n".join(out)
