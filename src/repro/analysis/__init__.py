"""Theory-vs-measured analysis: bound calculators, scaling fits,
experiment runners (one per paper table/figure), and report rendering."""

from .bounds import (
    cluster_cap,
    expected_landmarks,
    girth_conjecture_space,
    handshake_stretch_bound,
    stretch3_space_lower_bound,
    tz_stretch_bound,
    tz_table_bound_bits,
)
from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .reporting import render_markdown_table, render_table
from .scaling import PowerLawFit, doubling_ratio, fit_power_law, polylog_corrected_fit
from .scenario_report import (
    render_scenario_markdown,
    render_scenario_table,
    scenario_report_dict,
    write_scenario_json,
    write_scenario_markdown,
)

__all__ = [
    "tz_stretch_bound",
    "handshake_stretch_bound",
    "cluster_cap",
    "expected_landmarks",
    "stretch3_space_lower_bound",
    "girth_conjecture_space",
    "tz_table_bound_bits",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "render_table",
    "render_markdown_table",
    "PowerLawFit",
    "fit_power_law",
    "polylog_corrected_fit",
    "doubling_ratio",
    "render_scenario_markdown",
    "render_scenario_table",
    "scenario_report_dict",
    "write_scenario_json",
    "write_scenario_markdown",
]
