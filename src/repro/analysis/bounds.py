"""Closed-form bounds from the paper, as executable calculators.

Every experiment prints the relevant bound next to the measurement, so
EXPERIMENTS.md rows are self-contained paper-vs-measured comparisons.
"""

from __future__ import annotations

import math


def tz_stretch_bound(k: int) -> float:
    """Worst-case stretch of the general scheme without handshaking
    (Theorem 4.1): ``4k − 5`` for ``k ≥ 2``; ``k = 1`` is exact routing."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 1.0 if k == 1 else float(4 * k - 5)


def handshake_stretch_bound(k: int) -> float:
    """Stretch with handshaking (Theorem 4.2): ``2k − 1``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return 1.0 if k == 1 else float(2 * k - 1)


def cluster_cap(n: int, s: float, factor: float = 4.0) -> float:
    """The Theorem 3.1 guarantee: after ``center(G, s)``, every cluster
    has at most ``factor·n/s`` members (factor 4 in the paper)."""
    return factor * n / s


def expected_landmarks(n: int, s: float, constant: float = 2.0) -> float:
    """Expected landmark count of ``center(G, s)``: ``O(s·log n)``; the
    paper's analysis gives roughly ``2·s·ln n`` — used as the reference
    line in experiment F3 (shape, not exact constant)."""
    return constant * s * math.log(max(2, n))


def tz_table_bound_bits(n: int, k: int, c_polylog: float = 1.0) -> float:
    """Reference curve ``c · n^{1/k} · log²n`` bits for table scaling
    plots (F4/F5).  The polylog exponent matches the dominant cost in our
    accounting: ``Õ(n^{1/k})`` entries of ``Θ(log n)`` bits each."""
    return c_polylog * (n ** (1.0 / k)) * (math.log2(max(2, n)) ** 2)


def stretch3_space_lower_bound(n: int) -> float:
    """Total-space lower bound for stretch < 3 (Gavoille–Gengler, cited
    by TZ §1 to argue stretch-3 optimality): any routing scheme with
    stretch strictly below 3 uses Ω(n²) bits in total — i.e. Ω(n) bits at
    some vertex.  Returned as the concrete reference value ``n²/32``
    bits (the constant is illustrative; the *growth* is the claim)."""
    return n * n / 32.0


def girth_conjecture_space(n: int, k: int) -> float:
    """Under the Erdős girth conjecture, any scheme with stretch
    ``< 2k+1`` needs total space ``Ω(n^{1+1/k})`` bits — the reason the
    TZ tradeoff is believed optimal for every ``k``.  Reference value
    ``n^{1+1/k}/8``."""
    return (n ** (1.0 + 1.0 / k)) / 8.0


def log2n_bits(n: int) -> int:
    """⌈log₂ n⌉ — the label-size yardstick for F2."""
    return max(1, (max(n - 1, 1)).bit_length())
