"""Fail the build when a doc's relative link points at nothing.

Usage::

    python tools/linkcheck.py README.md ARCHITECTURE.md docs/cli.md

Scans each markdown file for inline links/images ``[text](target)`` and
checks that every *relative* target exists on disk (anchors are
stripped; pure-anchor, ``http(s)``/``mailto`` and targets that resolve
outside the repository — e.g. GitHub's ``../../actions/...`` badge
trick — are skipped, since only repo-relative paths can rot silently).
Exits non-zero listing every dead target.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links/images; [text](target "title") titles are cut.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def dead_links(doc: Path, repo_root: Path) -> list:
    """``(line, target)`` of every broken repo-relative link in ``doc``."""
    bad = []
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if repo_root not in resolved.parents and resolved != repo_root:
                continue  # escapes the repo: not checkable from a checkout
            if not resolved.exists():
                bad.append((lineno, target))
    return bad


def main(argv: list) -> int:
    """Check every named file; print dead links; non-zero exit on any."""
    repo_root = Path(__file__).resolve().parent.parent
    failures = 0
    for name in argv:
        doc = Path(name)
        if not doc.exists():
            print(f"linkcheck: {name}: file itself is missing")
            failures += 1
            continue
        for lineno, target in dead_links(doc, repo_root):
            print(f"linkcheck: {name}:{lineno}: dead relative link -> {target}")
            failures += 1
    if failures:
        print(f"linkcheck: {failures} dead link(s)")
        return 1
    print(f"linkcheck: {len(argv)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
